"""Command-line interface: ``repro-datalog`` (or ``python -m repro``).

Subcommands:

* ``analyze FILE``            — classification + structural totality report;
* ``run FILE``                — evaluate under a chosen semantics;
* ``fixpoints FILE``          — enumerate fixpoints (optionally stable only);
* ``ground FILE``             — grounding statistics;
* ``variant FILE``            — emit a Theorem 2/3/5 no-fixpoint variant;
* ``witness FILE``            — bounded search for a no-fixpoint database;
* ``explain FILE ATOM``       — provenance of one atom's truth value;
* ``dot FILE``                — Graphviz export of the program/ground graph;
* ``serve``                   — warm-start batch service: answer a JSONL
  request file from one compiled ground artifact, optionally across a
  process pool (``--workers``); requests may stream ``insert`` /
  ``retract`` updates into the serving engine;
* ``server``                  — long-lived concurrent TCP/JSONL server:
  asyncio front-end over the same artifact with per-session serialized
  updates, bounded admission (shed responses under overload), and
  graceful drain on SIGTERM;
* ``bench``                   — per-phase kernel timings plus the
  cold-vs-warm throughput and streaming-update modes, written to
  ``BENCH_<rev>.json``.

Program files use the Datalog syntax of :mod:`repro.datalog.parser`;
databases are fact files (``--db``).  Every subcommand evaluates through
one :class:`repro.api.Engine` (parse/ground/compile happen once per
invocation, whatever the semantics), and the analysis subcommands accept
``--json`` to emit machine-readable output: solutions use the unified
``repro-solution/1`` schema of :mod:`repro.io.json_io`, wrapped in a
``repro-cli/1`` envelope.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.api import Engine, Solution, describe_registry, get_spec
from repro.constructions.theorem2 import theorem2_constant_free_variant, theorem2_variant
from repro.constructions.theorem3 import theorem3_constant_free_variant, theorem3_variant
from repro.constructions.theorem5 import theorem5_variant
from repro.datalog.printer import format_database, format_program
from repro.errors import ReproError
from repro.io.dot import ground_graph_dot, program_graph_dot
from repro.io.json_io import explanation_to_obj, result_to_json_chunks, solution_to_obj
from repro.semantics.choices import RandomChoice
from repro.semantics.stable import is_stable_model

__all__ = ["main"]

CLI_SCHEMA = "repro-cli/1"

# Historical CLI spellings with their exact legacy headers and option
# plumbing; every other registry name/alias is also accepted (generic
# header, options derived from its SemanticsSpec).
_RUN_SEMANTICS = {
    "wf": ("well_founded", True, False),
    "pure-tb": ("pure_tie_breaking", True, True),
    "wf-tb": ("tie_breaking", True, True),
    "stratified": ("stratified", False, False),
    "perfect": ("perfect", True, False),
    "fitting": ("fitting", False, False),
}


def _engine(args) -> Engine:
    return Engine.from_files(
        args.program, getattr(args, "db", None), backend=getattr(args, "backend", None)
    )


def _emit(command: str, payload: dict[str, Any]) -> None:
    print(json.dumps({"schema": CLI_SCHEMA, "command": command, **payload}, indent=2))


def _emit_stream(command: str, payload: dict[str, Any]) -> None:
    """``_emit`` for payloads carrying live :class:`Solution` values.

    Streams the ``repro-cli/1`` envelope chunk-by-chunk; embedded
    solutions decode straight from kernel ids at write time, producing
    bytes identical to ``_emit`` on the materialized payload.
    """
    envelope = {"schema": CLI_SCHEMA, "command": command, **payload}
    out = sys.stdout
    for chunk in result_to_json_chunks(envelope, indent=2):
        out.write(chunk)
    out.write("\n")


def _print_model(solution: Solution, show_false: bool) -> None:
    for atom in sorted(solution.true_atoms, key=str):
        print(f"  {atom} = true")
    if show_false and solution.false_atoms is not None:
        for atom in sorted(solution.false_atoms, key=str):
            print(f"  {atom} = false")
    for atom in sorted(solution.undefined_atoms, key=str):
        print(f"  {atom} = undefined")


def _odd_cycle_obj(cycle) -> list[list] | None:
    if cycle is None:
        return None
    return [[source, target, positive] for source, target, positive in cycle.arcs]


def _classification_obj(info) -> dict[str, Any]:
    stratification = None
    if info.stratification is not None:
        stratification = {
            "levels": dict(sorted(info.stratification.level.items())),
            "strata": [sorted(s) for s in info.stratification.strata],
        }
    return {
        "rule_count": info.rule_count,
        "predicate_count": info.predicate_count,
        "is_propositional": info.is_propositional,
        "is_positive": info.is_positive,
        "is_stratified": info.is_stratified,
        "stratification": stratification,
        "is_call_consistent": info.is_call_consistent,
        "is_structurally_total": info.is_structurally_total,
        "is_structurally_nonuniformly_total": info.is_structurally_nonuniformly_total,
        "odd_cycle": _odd_cycle_obj(info.odd_cycle),
        "useless": sorted(info.useless),
    }


def _structural_obj(report) -> dict[str, Any]:
    return {
        "structurally_total": report.structurally_total,
        "structurally_nonuniformly_total": report.structurally_nonuniformly_total,
        "odd_cycle": _odd_cycle_obj(report.odd_cycle),
        "reduced_odd_cycle": _odd_cycle_obj(report.reduced_odd_cycle),
        "useless": sorted(report.useless),
    }


def _cmd_analyze(args) -> int:
    engine = _engine(args)
    classification, report = engine.analyze()
    if args.json:
        _emit(
            "analyze",
            {
                "classification": _classification_obj(classification),
                "structural": _structural_obj(report),
            },
        )
        return 0
    print(classification)
    print()
    print(report)
    return 0


def _cmd_run(args) -> int:
    if args.semantics == "help":
        print(describe_registry())
        return 0
    engine = _engine(args)
    if args.semantics in _RUN_SEMANTICS:
        name, takes_grounding, takes_seed = _RUN_SEMANTICS[args.semantics]
    else:
        spec = get_spec(args.semantics)  # raises with available names
        name = spec.name
        takes_grounding = spec.default_grounding is not None
        takes_seed = "policy" in spec.options
    options: dict[str, Any] = {}
    if takes_grounding:
        options["grounding"] = args.grounding
    if takes_seed and args.seed is not None:
        options["policy"] = RandomChoice(args.seed)
    solution = engine.solve(name, **options)
    if args.json:
        _emit_stream("run", {"solution": solution})
        return 0 if args.semantics == "stratified" or solution.total else 3
    if args.semantics == "wf":
        print(f"well-founded model ({solution.iterations} unfounded iterations):")
    elif args.semantics == "pure-tb":
        print(f"pure tie-breaking model ({solution.free_choice_count} free choices):")
    elif args.semantics == "wf-tb":
        print(
            f"well-founded tie-breaking model ({solution.free_choice_count} free choices):"
        )
    elif args.semantics == "stratified":
        print("stratified model:")
        for atom in sorted(solution.true_atoms, key=str):
            print(f"  {atom} = true")
        return 0
    elif args.semantics == "perfect":
        print("perfect model:")
    elif args.semantics == "fitting":
        print("Fitting (Kripke-Kleene) model:")
    elif not solution.found:
        print(f"no {name} model")
        return 3
    else:
        print(f"{name} model:")
    _print_model(solution, args.show_false)
    print(f"total: {solution.total}")
    return 0 if solution.total else 3


def _cmd_fixpoints(args) -> int:
    engine = _engine(args)
    count = 0
    solutions = []
    for solution in engine.enumerate("completion", limit=args.limit, grounding=args.grounding):
        if args.stable and not is_stable_model(engine.program, engine.database, solution.run):
            continue
        count += 1
        if args.json:
            solutions.append(solution_to_obj(solution))
            continue
        label = "stable model" if args.stable else "fixpoint"
        body = ", ".join(sorted(str(a) for a in solution.true_atoms)) or "(empty)"
        print(f"{label} {count}: {body}")
    if args.json:
        _emit("fixpoints", {"stable_only": args.stable, "count": count, "solutions": solutions})
        return 0 if count else 3
    if count == 0:
        print("no fixpoint" if not args.stable else "no stable model")
        return 3
    return 0


def _cmd_ground(args) -> int:
    engine = _engine(args)
    gp = engine.ground_for(args.mode)
    if args.json:
        _emit(
            "ground",
            {
                "ground": {
                    "mode": gp.mode,
                    "universe": len(gp.universe),
                    "atoms": gp.atom_count,
                    "rules": gp.rule_count,
                },
                "timings": dict(engine.timings),
            },
        )
        return 0
    print(gp.describe())
    return 0


def _cmd_variant(args) -> int:
    engine = _engine(args)
    program = engine.program
    builders = {
        ("2", False): theorem2_variant,
        ("2", True): theorem2_constant_free_variant,
        ("3", False): theorem3_variant,
        ("3", True): theorem3_constant_free_variant,
    }
    if args.theorem == "5":
        variant, delta = theorem5_variant(program, nonuniform=args.nonuniform)
    else:
        variant, delta = builders[(args.theorem, args.constant_free)](program)
    print(format_program(variant, header=f"Theorem {args.theorem} variant"))
    print(format_database(delta, header="database"))
    return 0


def _cmd_witness(args) -> int:
    engine = _engine(args)
    witness = engine.witness_search(
        max_constants=args.max_constants,
        nonuniform=not args.uniform,
    )
    if args.json:
        _emit(
            "witness",
            {
                "witness": {
                    "found": witness is not None,
                    "max_constants": args.max_constants,
                    "uniform": args.uniform,
                    "database": (
                        None if witness is None else sorted(str(a) for a in witness.atoms())
                    ),
                },
            },
        )
        return 3 if witness is not None else 0
    if witness is None:
        print(
            f"no counterexample database with <= {args.max_constants} fresh "
            "constants (evidence of totality, not proof — Theorem 6)"
        )
        return 0
    print("NOT TOTAL — this database admits no fixpoint:")
    print(format_database(witness) or "(the empty database)")
    return 3


def _cmd_explain(args) -> int:
    from repro.ground.explain import format_explanation

    engine = _engine(args)
    options: dict[str, Any] = {"grounding": args.grounding}
    if args.semantics == "wf":
        name = "well_founded"
    else:
        name = "tie_breaking"
        if args.seed is not None:
            options["policy"] = RandomChoice(args.seed)
    solution = engine.solve(name, **options)
    # Same (semantics, options) key: explain() reuses the cached solve above.
    tree = engine.explain(args.atom, semantics=name, max_depth=args.depth, **options)
    if args.json:
        _emit(
            "explain",
            {
                "solution": solution_to_obj(solution),
                "explanation": explanation_to_obj(tree),
            },
        )
        return 0
    print(format_explanation(tree))
    return 0


def _cmd_dot(args) -> int:
    engine = _engine(args)
    if args.ground:
        print(ground_graph_dot(engine.ground_for(args.grounding)))
    else:
        print(program_graph_dot(engine.program))
    return 0


def _cmd_serve(args) -> int:
    from time import perf_counter

    from repro.service.batch import BatchSolver

    if not args.artifact and not args.program:
        print("error: serve needs a program file or an existing --artifact", file=sys.stderr)
        return 2
    program = Path(args.program).read_text() if args.program else None
    database = Path(args.db).read_text() if args.db else None
    with BatchSolver(
        artifact=args.artifact,
        program=program,
        database=database,
        grounding=args.grounding,
        workers=args.workers,
        backend=args.backend,
    ) as solver:
        t0 = perf_counter()
        results = solver.solve_file(args.batch, materialize=False)
        elapsed = perf_counter() - t0
    # Inline results carry live solutions; encode streams them from
    # kernel ids directly to the output, one JSONL line per request.
    if args.output:
        with Path(args.output).open("w") as out:
            for r in results:
                for chunk in result_to_json_chunks(r, sort_keys=True):
                    out.write(chunk)
                out.write("\n")
    else:
        for r in results:
            sys.stdout.write("".join(result_to_json_chunks(r, sort_keys=True)))
            sys.stdout.write("\n")
    failed = sum(1 for r in results if not r.get("ok"))
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    # Aggregate solve-phase stats over *distinct* solves: requests served
    # from an engine's solution cache echo the timings of the solve that
    # populated it, and double-counting those would report more solve
    # seconds than wall-clock time.
    distinct_solves: set[tuple] = set()
    for r in results:
        timings = r.get("timings")
        if timings:
            distinct_solves.add(tuple(sorted(timings.items())))
    solve_stats: dict[str, float] = {}
    for solve in distinct_solves:
        for key, value in solve:
            solve_stats[key] = solve_stats.get(key, 0.0) + value
    phase_note = ""
    if solve_stats:
        phase_note = (
            f"; {len(distinct_solves)} solve(s) {solve_stats.get('solve_s', 0.0):.3f}s"
            f" (close {solve_stats.get('close_s', 0.0):.3f}"
            f" / unfounded {solve_stats.get('unfounded_s', 0.0):.3f}"
            f" / tie-select {solve_stats.get('tie_select_s', 0.0):.3f}"
            f" / tie-analysis {solve_stats.get('tie_analysis_s', 0.0):.3f}"
            f" / tie-apply {solve_stats.get('tie_apply_s', 0.0):.3f}"
            f" / result {solve_stats.get('result_s', 0.0):.3f})"
        )
    print(
        f"served {len(results)} request(s) ({failed} failed) in {elapsed:.3f}s "
        f"({rate:.1f} req/s, workers={args.workers}{phase_note})",
        file=sys.stderr,
    )
    return 0 if failed == 0 else 3


def _cmd_server(args) -> int:
    import asyncio

    from repro.service.server import ReproServer, run_server

    if not args.artifact and not args.program:
        print("error: server needs a program file or an existing --artifact", file=sys.stderr)
        return 2
    program = Path(args.program).read_text() if args.program else None
    database = Path(args.db).read_text() if args.db else None
    server = ReproServer(
        args.artifact,
        program=program,
        database=database,
        grounding=args.grounding,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        timeout_s=args.timeout,
        session_ttl_s=args.session_ttl,
        max_sessions=args.max_sessions,
        session_cache=args.session_cache,
        backend=args.backend,
    )
    try:
        asyncio.run(run_server(server, ready_stream=sys.stderr))
    except KeyboardInterrupt:  # platforms without add_signal_handler
        pass
    stats = server.stats()
    print(
        f"repro server stopped: {stats['served']} served / {stats['failed']} failed / "
        f"{stats['shed']} shed; sessions: {stats['sessions']['created']} created, "
        f"{stats['sessions']['snapshots']} snapshotted",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.runner import format_table, run_bench, write_bench

    family_names = (
        [f.strip() for f in args.families.split(",") if f.strip()]
        if args.families
        else None
    )
    record = run_bench(
        scale=args.scale,
        family_names=family_names,
        repeat=args.repeat,
        baseline=not args.no_baseline,
        throughput=not args.no_throughput,
        enumerate_mode=not args.no_enumerate,
        updates=not args.no_updates,
        load=not args.no_load,
        load_concurrency=args.load_concurrency,
        workers=args.bench_workers,
        backends=not args.no_backends,
        results_mode=not args.no_results,
    )
    path = write_bench(record, Path(args.output) if args.output else None)
    print(format_table(record))
    print(f"wrote {path}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-datalog",
        description="Tie-breaking semantics and structural totality for Datalog¬",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, json_flag=True):
        p.add_argument("program", help="Datalog¬ program file")
        p.add_argument("--db", help="database (facts) file")
        if json_flag:
            p.add_argument(
                "--json",
                action="store_true",
                help="emit machine-readable JSON (repro-cli/1 envelope)",
            )

    p = sub.add_parser("analyze", help="classification and structural report")
    add_common(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("run", help="evaluate the program under a semantics")
    add_common(p)
    p.add_argument(
        "--semantics",
        default="wf-tb",
        metavar="NAME",
        help="wf | pure-tb | wf-tb | stratified | perfect | fitting, any "
        "repro.api registry name/alias (stable, completion, alternating, "
        "modular, ...), or 'help' to list them",
    )
    p.add_argument("--grounding", choices=["full", "relevant", "edb"], default="full")
    p.add_argument(
        "--backend",
        choices=["python", "array", "auto"],
        help="evaluation kernel: python (default), array (NumPy, needs the "
        "[array] extra), or auto (array on large graphs when numpy imports)",
    )
    p.add_argument("--seed", type=int, help="random tie orientation seed")
    p.add_argument("--show-false", action="store_true")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("fixpoints", help="enumerate fixpoints / stable models")
    add_common(p)
    p.add_argument("--limit", type=int)
    p.add_argument("--stable", action="store_true", help="stable models only")
    p.add_argument("--grounding", choices=["full", "edb"], default="full")
    p.set_defaults(func=_cmd_fixpoints)

    p = sub.add_parser("ground", help="grounding statistics")
    add_common(p)
    p.add_argument("--mode", choices=["full", "relevant", "edb"], default="full")
    p.set_defaults(func=_cmd_ground)

    p = sub.add_parser("variant", help="emit a Theorem 2/3/5 variant")
    add_common(p, json_flag=False)
    p.add_argument("--theorem", choices=["2", "3", "5"], default="2")
    p.add_argument("--constant-free", action="store_true")
    p.add_argument("--nonuniform", action="store_true", help="theorem 5 only")
    p.set_defaults(func=_cmd_variant)

    p = sub.add_parser("witness", help="bounded nontotality search (§5)")
    add_common(p)
    p.add_argument("--max-constants", type=int, default=1)
    p.add_argument("--uniform", action="store_true", help="allow initial IDB facts")
    p.set_defaults(func=_cmd_witness)

    p = sub.add_parser("explain", help="provenance of one atom's value")
    add_common(p)
    p.add_argument("atom", help="ground atom, e.g. 'win(1)'")
    p.add_argument("--semantics", choices=["wf", "wf-tb"], default="wf-tb")
    p.add_argument("--grounding", choices=["full", "relevant", "edb"], default="full")
    p.add_argument("--seed", type=int)
    p.add_argument("--depth", type=int, default=12)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("dot", help="Graphviz export")
    add_common(p, json_flag=False)
    p.add_argument("--ground", action="store_true", help="ground graph instead of G(Π)")
    p.add_argument("--grounding", choices=["full", "relevant", "edb"], default="full")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("serve", help="warm-start batch service over one ground artifact")
    p.add_argument(
        "program",
        nargs="?",
        help="Datalog¬ program file (optional when --artifact already exists)",
    )
    p.add_argument("--db", help="database (facts) file")
    p.add_argument(
        "--batch", required=True, help="JSONL request file (repro-batchreq/1, one per line)"
    )
    p.add_argument(
        "--artifact",
        help="repro-ground artifact path: loaded if present, else compiled and saved there",
    )
    p.add_argument(
        "--grounding",
        choices=["full", "relevant", "edb"],
        help="grounding mode used when compiling the artifact",
    )
    p.add_argument("--workers", type=int, default=0, help="worker processes (0 = inline)")
    p.add_argument(
        "--backend",
        choices=["python", "array", "auto"],
        help="default kernel backend for every serving engine",
    )
    p.add_argument("--output", help="write result lines here instead of stdout")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "server",
        help="long-lived concurrent TCP/JSONL server (sessions, admission control)",
    )
    p.add_argument(
        "program",
        nargs="?",
        help="Datalog¬ program file (optional when --artifact already exists)",
    )
    p.add_argument("--db", help="database (facts) file")
    p.add_argument(
        "--artifact",
        help="repro-ground artifact path: loaded if present, else compiled and saved there",
    )
    p.add_argument(
        "--grounding",
        choices=["full", "relevant", "edb"],
        help="grounding mode used when compiling the artifact",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral, printed)")
    p.add_argument("--workers", type=int, default=0, help="worker processes (0 = inline)")
    p.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="admission bound: in-flight requests before shedding (default 256)",
    )
    p.add_argument("--timeout", type=float, help="per-request solve deadline in seconds")
    p.add_argument(
        "--session-ttl",
        type=float,
        default=600.0,
        help="idle seconds before a session expires (default 600)",
    )
    p.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="bound on live stateful sessions (default 64)",
    )
    p.add_argument(
        "--session-cache",
        help="artifact cache directory expired sessions snapshot into",
    )
    p.add_argument(
        "--backend",
        choices=["python", "array", "auto"],
        help="default kernel backend for every serving engine",
    )
    p.set_defaults(func=_cmd_server)

    from repro.bench.runner import FAMILIES, SCALES

    p = sub.add_parser("bench", help="kernel benchmark suite (per-phase timings)")
    p.add_argument("--scale", choices=list(SCALES), default="small")
    p.add_argument(
        "--families",
        help=f"comma-separated subset of: {', '.join(FAMILIES)}",
    )
    p.add_argument("--output", help="output path (default: ./BENCH_<rev>.json)")
    p.add_argument("--repeat", type=int, default=1, help="best-of-N timing runs")
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the seed-kernel baseline column (no speedup recorded)",
    )
    p.add_argument(
        "--no-throughput",
        action="store_true",
        help="skip the cold-vs-warm artifact serving (throughput) mode",
    )
    p.add_argument(
        "--no-enumerate",
        action="store_true",
        help="skip the trail-vs-clone enumeration (models/sec) mode",
    )
    p.add_argument(
        "--no-updates",
        action="store_true",
        help="skip the streaming-update vs full-rebuild (updates/sec) mode",
    )
    p.add_argument(
        "--no-load",
        action="store_true",
        help="skip the concurrent-server load mode (req/s, p50/p99 latency)",
    )
    p.add_argument(
        "--no-backends",
        action="store_true",
        help="skip the python-vs-array kernel backend comparison",
    )
    p.add_argument(
        "--no-results",
        action="store_true",
        help="skip the result-tier mode (query answers/sec, encode MB/s)",
    )
    p.add_argument(
        "--load-concurrency",
        type=int,
        help="in-flight request cap for the load mode (default per scale)",
    )
    p.add_argument(
        "--workers",
        dest="bench_workers",
        type=int,
        help="pool width for the sharding/load segments (default 2-4, CPU-capped)",
    )
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
