"""CNF formulas in DIMACS-style integer encoding.

Literals are nonzero integers: ``v`` asserts variable ``v`` true, ``-v``
asserts it false.  Variables are allocated densely from 1.  This tiny
substrate backs the Clark-completion encoding of supported models
(fixpoint existence is NP-complete even propositionally, §2 [KP], so an
exact enumerator needs a SAT search underneath).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["CNF"]


class CNF:
    """A growable CNF formula.

    >>> cnf = CNF()
    >>> x, y = cnf.new_var(), cnf.new_var()
    >>> cnf.add_clause([x, y]); cnf.add_clause([-x, y])
    >>> cnf.num_vars, len(cnf.clauses)
    (2, 2)
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable (positive integer)."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (a disjunction of literals).

        Duplicate literals are removed; tautological clauses (containing
        ``v`` and ``-v``) are dropped.  An empty clause makes the formula
        trivially unsatisfiable and is kept so the solver reports it.
        """
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if not isinstance(lit, int) or lit == 0:
                raise ValueError(f"invalid literal {lit!r}")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(tuple(clause))

    def add_unit(self, literal: int) -> None:
        """Add a single-literal clause."""
        self.add_clause([literal])

    def copy(self) -> "CNF":
        """An independent copy (clauses list duplicated)."""
        out = CNF()
        out.num_vars = self.num_vars
        out.clauses = list(self.clauses)
        return out

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
