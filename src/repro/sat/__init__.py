"""A from-scratch DPLL SAT substrate (CNF, solver, model enumeration)."""

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, enumerate_models, solve

__all__ = ["CNF", "Solver", "enumerate_models", "solve"]
