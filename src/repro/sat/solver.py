"""A small, correct DPLL SAT solver with two-watched-literal propagation.

Built from scratch (the reproduction allows no solver dependencies).
Design: iterative DPLL with chronological backtracking, unit propagation
via the classic two-watched-literals scheme, a static variable order by
occurrence count, and negative-polarity-first decisions (which makes the
*first* model of a Clark-completion formula lean minimal — handy when the
caller only needs one fixpoint).

This is deliberately not a CDCL solver: the instances produced by the
paper's constructions are small (hundreds to a few thousand variables) and
the priority is auditability.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.sat.cnf import CNF

__all__ = ["Solver", "solve", "enumerate_models"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class Solver:
    """One-shot solver over a CNF (create a new instance per ``solve``)."""

    def __init__(self, cnf: CNF, assumptions: Sequence[int] = ()):
        self.num_vars = cnf.num_vars
        self.clauses: list[list[int]] = []
        self.value = [_UNASSIGNED] * (self.num_vars + 1)
        self.trail: list[int] = []  # assigned literals, in order
        # decision stack: (trail_length_before, literal, flipped)
        self.decisions: list[tuple[int, int, bool]] = []
        self.trivially_unsat = False

        # watches[encoded literal] = clause indices watching that literal
        self.watches: list[list[int]] = [[] for _ in range(2 * (self.num_vars + 1))]
        self._units: list[int] = list(assumptions)

        for clause in cnf.clauses:
            lits = list(clause)
            if not lits:
                self.trivially_unsat = True
                return
            if len(lits) == 1:
                self._units.append(lits[0])
                continue
            index = len(self.clauses)
            self.clauses.append(lits)
            self.watches[self._encode(lits[0])].append(index)
            self.watches[self._encode(lits[1])].append(index)

        # Static decision order: most frequent variables first.
        counts = [0] * (self.num_vars + 1)
        for clause in cnf.clauses:
            for lit in clause:
                counts[abs(lit)] += 1
        self.order = sorted(range(1, self.num_vars + 1), key=lambda v: -counts[v])

    @staticmethod
    def _encode(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    def _lit_value(self, lit: int) -> int:
        v = self.value[abs(lit)]
        return v if lit > 0 else -v

    def _assign(self, lit: int) -> bool:
        """Assign ``lit`` true; False on immediate contradiction."""
        current = self._lit_value(lit)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        self.value[abs(lit)] = _TRUE if lit > 0 else _FALSE
        self.trail.append(lit)
        return True

    def _propagate(self, start: int) -> bool:
        """Watched-literal unit propagation from trail position ``start``."""
        i = start
        while i < len(self.trail):
            falsified = -self.trail[i]
            i += 1
            watch_list = self.watches[self._encode(falsified)]
            j = 0
            while j < len(watch_list):
                c_index = watch_list[j]
                clause = self.clauses[c_index]
                # Normalize: watched literals are clause[0], clause[1].
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] == falsified now.
                if self._lit_value(clause[0]) == _TRUE:
                    j += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != _FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[self._encode(clause[1])].append(c_index)
                        watch_list[j] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # No new watch: clause is unit (clause[0]) or conflicting.
                if not self._assign(clause[0]):
                    return False
                j += 1
        return True

    def _backtrack(self) -> bool:
        """Undo to the most recent unflipped decision; flip it."""
        while self.decisions:
            trail_length, lit, flipped = self.decisions.pop()
            while len(self.trail) > trail_length:
                undone = self.trail.pop()
                self.value[abs(undone)] = _UNASSIGNED
            if flipped:
                continue
            self.decisions.append((trail_length, -lit, True))
            if self._assign(-lit) and self._propagate(len(self.trail) - 1):
                return True
            # Immediate conflict on the flip: continue unwinding.
        return False

    def solve(self) -> Optional[list[bool]]:
        """A satisfying assignment indexed by variable (index 0 unused), or None."""
        if self.trivially_unsat:
            return None
        position = len(self.trail)
        for lit in self._units:
            if not self._assign(lit):
                return None
        if not self._propagate(position):
            if not self._backtrack():
                return None
        while True:
            decision_var = next(
                (v for v in self.order if self.value[v] == _UNASSIGNED), None
            )
            if decision_var is None:
                return [False] + [self.value[v] == _TRUE for v in range(1, self.num_vars + 1)]
            lit = -decision_var  # negative polarity first: lean-minimal models
            self.decisions.append((len(self.trail), lit, False))
            if self._assign(lit) and self._propagate(len(self.trail) - 1):
                continue
            if not self._backtrack():
                return None


def solve(cnf: CNF, assumptions: Sequence[int] = ()) -> Optional[list[bool]]:
    """Solve ``cnf`` (with optional assumed literals); see :class:`Solver`."""
    return Solver(cnf, assumptions).solve()


def enumerate_models(
    cnf: CNF,
    project: Sequence[int],
    *,
    limit: int | None = None,
) -> Iterator[dict[int, bool]]:
    """All satisfying assignments *projected* onto the ``project`` variables.

    Models agreeing on ``project`` are yielded once.  Implemented by
    blocking clauses over the projection and re-solving — quadratic in the
    number of projected models, which is fine at reproduction scale.
    """
    working = cnf.copy()
    seen = 0
    while limit is None or seen < limit:
        model = solve(working)
        if model is None:
            return
        projection = {v: model[v] for v in project}
        yield projection
        seen += 1
        if not project:
            return
        working.add_clause([(-v if model[v] else v) for v in project])
