"""Unit and property tests for the DPLL solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import enumerate_models, solve


def cnf_of(num_vars, clauses):
    cnf = CNF()
    cnf.new_vars(num_vars)
    for c in clauses:
        cnf.add_clause(c)
    return cnf


def brute_force_models(num_vars, clauses):
    """All satisfying assignments by exhaustive enumeration."""
    models = []
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any((lit > 0) == assignment[abs(lit)] for lit in clause)
            for clause in clauses
        ):
            models.append(assignment)
    return models


class TestSolveBasics:
    def test_empty_formula_sat(self):
        assert solve(CNF()) == [False]

    def test_single_unit(self):
        model = solve(cnf_of(1, [[1]]))
        assert model[1] is True

    def test_contradictory_units(self):
        assert solve(cnf_of(1, [[1], [-1]])) is None

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.add_clause([])
        assert solve(cnf) is None

    def test_implication_chain(self):
        # x1 and x1->x2->...->x6
        clauses = [[1]] + [[-i, i + 1] for i in range(1, 6)]
        model = solve(cnf_of(6, clauses))
        assert all(model[v] for v in range(1, 7))

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole: p1, p2, not both
        assert solve(cnf_of(2, [[1], [2], [-1, -2]])) is None

    def test_assumptions(self):
        cnf = cnf_of(2, [[-1, 2]])
        model = solve(cnf, assumptions=[1])
        assert model[1] and model[2]
        assert solve(cnf, assumptions=[1, -2]) is None

    def test_tautology_dropped(self):
        cnf = CNF()
        cnf.add_clause([1, -1])
        assert len(cnf.clauses) == 0

    def test_invalid_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([0])


class TestEnumerate:
    def test_all_models_of_free_vars(self):
        cnf = cnf_of(2, [[1, 2]])
        models = list(enumerate_models(cnf, [1, 2]))
        assert len(models) == 3

    def test_projection_dedupes(self):
        # y unconstrained: projecting on x alone gives 1 model
        cnf = cnf_of(2, [[1]])
        models = list(enumerate_models(cnf, [1]))
        assert len(models) == 1 and models[0] == {1: True}

    def test_limit(self):
        cnf = cnf_of(3, [])
        assert len(list(enumerate_models(cnf, [1, 2, 3], limit=4))) == 4

    def test_unsat_yields_nothing(self):
        cnf = cnf_of(1, [[1], [-1]])
        assert list(enumerate_models(cnf, [1])) == []


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_solver_agrees_with_brute_force(data):
    """Random small CNFs: solver verdict and model count match brute force."""
    num_vars = data.draw(st.integers(2, 6))
    num_clauses = data.draw(st.integers(1, 12))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, 3))
        clause = [
            data.draw(st.integers(1, num_vars)) * data.draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    expected = brute_force_models(num_vars, clauses)
    model = solve(cnf_of(num_vars, clauses))
    if expected:
        assert model is not None
        assignment = {v: model[v] for v in range(1, num_vars + 1)}
        assert all(
            any((lit > 0) == assignment[abs(lit)] for lit in clause)
            for clause in clauses
        )
        found = list(
            enumerate_models(cnf_of(num_vars, clauses), list(range(1, num_vars + 1)))
        )
        assert len(found) == len(expected)
    else:
        assert model is None
