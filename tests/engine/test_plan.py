"""Compiled join-plan machinery: interning, int relations, slot joins.

Covers the :mod:`repro.engine.plan` primitives directly, plus the
grounder-level behaviours that ride them: non-range-restricted rules
(paper §1 program (2)) and empty-universe edge cases through the
``JoinPlan`` path.
"""

import pytest

from repro.bench.seed_grounder import seed_ground
from repro.datalog.atoms import Atom, atom, pos
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.terms import Constant, Variable
from repro.engine.plan import ConstantPool, IntFactStore, JoinPlan, build_row, compile_row_spec

PROGRAM_TWO = "p(X, Y) :- not p(Y, Y), e(X)."  # §1 program (2)


class TestConstantPool:
    def test_intern_is_stable_and_dense(self):
        pool = ConstantPool()
        a, b = Constant("a"), Constant(7)
        assert pool.intern(a) == 0
        assert pool.intern(b) == 1
        assert pool.intern(a) == 0  # idempotent
        assert pool.constant(1) == b
        assert pool.get(Constant("missing")) is None
        assert len(pool) == 2 and a in pool

    def test_seed_constants(self):
        pool = ConstantPool([Constant(i) for i in range(3)])
        assert [pool.constant(i).value for i in range(3)] == [0, 1, 2]


class TestIntFactStore:
    def test_add_contains_count(self):
        store = IntFactStore()
        assert store.add("e", (0, 1))
        assert not store.add("e", (0, 1))  # duplicate
        assert store.contains("e", (0, 1))
        assert store.count("e") == 1 and len(store) == 1
        assert list(store.predicates()) == ["e"]

    def test_matching_uses_and_maintains_indexes(self):
        store = IntFactStore()
        store.add("e", (0, 1))
        store.add("e", (0, 2))
        # Single-position signatures take the bare value as key (the
        # probe hot path skips the 1-tuple allocation).
        assert sorted(store.matching("e", (0,), 0)) == [(0, 1), (0, 2)]
        # Rows added after the index was built must land in it.
        store.add("e", (0, 3))
        assert sorted(store.matching("e", (0,), 0)) == [(0, 1), (0, 2), (0, 3)]
        assert store.matching("e", (1,), 9) == ()

    def test_matching_multi_position_keys_are_tuples(self):
        store = IntFactStore()
        store.add("t", (0, 1, 2))
        store.add("t", (0, 1, 3))
        store.add("t", (0, 2, 2))
        assert sorted(store.matching("t", (0, 1), (0, 1))) == [(0, 1, 2), (0, 1, 3)]
        store.add("t", (0, 1, 4))
        assert sorted(store.matching("t", (0, 1), (0, 1))) == [(0, 1, 2), (0, 1, 3), (0, 1, 4)]
        assert store.matching("t", (0, 2), (9, 9)) == ()


def _slots_of(rule_vars):
    return {Variable(v): i for i, v in enumerate(rule_vars)}


class TestJoinPlan:
    def test_chained_join_binds_slots(self):
        pool = ConstantPool()
        store = IntFactStore()
        for row in [(0, 1), (1, 2), (2, 3)]:
            store.add("e", row)
        literals = [pos("e", "X", "Y"), pos("e", "Y", "Z")]
        plan = JoinPlan.compile(literals, _slots_of("XYZ"), pool)
        assert plan.bound_slots == {0, 1, 2}
        results = []
        plan.execute(store, [0, 0, 0], lambda s: results.append(tuple(s)))
        assert sorted(results) == [(0, 1, 2), (1, 2, 3)]

    def test_repeated_variable_in_one_literal(self):
        pool = ConstantPool()
        store = IntFactStore()
        store.add("e", (0, 0))
        store.add("e", (0, 1))
        plan = JoinPlan.compile([pos("e", "X", "X")], _slots_of("X"), pool)
        results = []
        plan.execute(store, [0], lambda s: results.append(tuple(s)))
        assert results == [(0,)]

    def test_constant_arguments_become_static_keys(self):
        pool = ConstantPool()
        key = pool.intern(Constant("a"))
        store = IntFactStore()
        store.add("e", (key, 5))
        plan = JoinPlan.compile([pos("e", "a", "X")], _slots_of("X"), pool)
        (step,) = plan.steps
        # Single-position static keys are bare values, matching the
        # store's scalar-key convention.
        assert step.static_key == key
        results = []
        plan.execute(store, [0], lambda s: results.append(tuple(s)))
        assert results == [(5,)]

    def test_empty_conjunction_emits_once(self):
        plan = JoinPlan.compile([], {}, ConstantPool())
        calls = []
        plan.execute(IntFactStore(), [], lambda s: calls.append(1))
        assert calls == [1]

    def test_rejects_negative_literals(self):
        from repro.datalog.atoms import neg

        with pytest.raises(ValueError):
            JoinPlan.compile([neg("p", "X")], _slots_of("X"), ConstantPool())

    def test_delta_promotion_probes_delta_first(self):
        pool = ConstantPool()
        store = IntFactStore()
        delta = IntFactStore()
        store.add("e", (0, 1))
        store.add("e", (1, 2))
        delta.add("e", (1, 2))  # only this row may seed the join
        plan = JoinPlan.compile([pos("e", "X", "Y"), pos("e", "Y", "Z")], _slots_of("XYZ"), pool)
        results = []
        plan.execute(store, [0, 0, 0], lambda s: results.append(tuple(s)), delta)
        # Delta row (1, 2) has no continuation e(2, _) in the full store.
        assert results == []
        delta2 = IntFactStore()
        delta2.add("e", (0, 1))
        results = []
        plan.execute(store, [0, 0, 0], lambda s: results.append(tuple(s)), delta2)
        assert results == [(0, 1, 2)]


class TestRowSpecs:
    def test_spec_mixes_slots_and_constants(self):
        pool = ConstantPool()
        slot_of = _slots_of("XY")
        spec = compile_row_spec(atom("p", "X", "a", "Y"), slot_of, pool)
        a_id = pool.get(Constant("a"))
        assert spec == (0, ~a_id, 1)
        assert build_row(spec, [10, 20]) == (10, a_id, 20)


class TestNonRangeRestrictedGrounding:
    """Paper §1 program (2): the head variable Y is not range-restricted."""

    def test_program_two_grounds_identically_to_seed(self):
        program = parse_program(PROGRAM_TWO)
        database = parse_database("e(1). e(2).")
        for mode in ("full", "relevant", "edb"):
            gp = ground(program, database, mode=mode)
            gp_seed = seed_ground(program, database, mode=mode)
            new = {
                (
                    gp.atoms.atom(gr.head),
                    frozenset(gp.atoms.atom(a) for a in gr.pos),
                    frozenset(gp.atoms.atom(a) for a in gr.neg),
                    gr.rule_index,
                    gr.substitution,
                )
                for gr in gp.rules
            }
            seed = {
                (
                    gp_seed.atoms.atom(gr.head),
                    frozenset(gp_seed.atoms.atom(a) for a in gr.pos),
                    frozenset(gp_seed.atoms.atom(a) for a in gr.neg),
                    gr.rule_index,
                    gr.substitution,
                )
                for gr in gp_seed.rules
            }
            assert new == seed, mode

    def test_unbound_head_variable_enumerates_universe(self):
        program = parse_program(PROGRAM_TWO)
        database = parse_database("e(a). e(b).")
        gp = ground(program, database, mode="relevant")
        assert gp.rule_count == 4  # X bound by e, Y enumerated over {a, b}
        heads = {gp.atoms.atom(gr.head) for gr in gp.rules}
        assert heads == {atom("p", x, y) for x in "ab" for y in "ab"}

    def test_unbound_variable_only_in_negative_literal(self):
        program = parse_program("s(X) :- e(X), not q(Y).")
        database = parse_database("e(1).")
        gp = ground(program, database, mode="relevant")
        assert gp.rule_count == 1  # Y enumerated over the universe {1}
        (gr,) = gp.rules
        assert [gp.atoms.atom(a) for a in gr.neg] == [atom("q", 1)]


class TestEmptyUniverse:
    def test_variable_rule_over_empty_universe_has_no_instances(self):
        program = parse_program("p(Y) :- q.")
        database = Database.from_dict({"q": [()]})
        for mode in ("full", "relevant", "edb"):
            gp = ground(program, database, mode=mode)
            assert gp.rule_count == 0, mode
            assert gp.atoms.get(Atom("q")) is not None

    def test_propositional_program_over_empty_universe(self):
        program = parse_program("p :- not q. q :- not p.")
        gp = ground(program, Database(), mode="relevant")
        assert gp.rule_count == 2
        assert gp.atom_count == 2
        assert gp.universe == ()

    def test_empty_database_and_program_constants_only(self):
        program = parse_program("p(a) :- not q(a).")
        gp = ground(program, Database(), mode="relevant")
        assert {str(gp.atoms.atom(gr.head)) for gr in gp.rules} == {"p(a)"}


class TestLazyGroundSurface:
    """The object-level views materialize on demand and stay consistent."""

    def test_rule_view_supports_sequence_protocol(self):
        program, database = parse_program(PROGRAM_TWO), parse_database("e(1). e(2).")
        gp = ground(program, database, mode="relevant")
        assert len(gp.rules) == 4
        assert gp.rules[0] is gp.rules[0]  # materialized once, cached
        assert gp.rules[-1] == list(gp.rules)[-1]
        assert [gr.head for gr in gp.rules[:2]] == [gr.head for gr in list(gp.rules)[:2]]
        with pytest.raises(IndexError):
            gp.rules[99]

    def test_atom_table_get_unknown_constant(self):
        program, database = parse_program(PROGRAM_TWO), parse_database("e(1).")
        gp = ground(program, database, mode="relevant")
        assert gp.atoms.get(atom("e", "zzz")) is None
        assert gp.atoms.get(atom("nosuch", 1)) is None

    def test_id_of_growth_invalidates_index_in_joined_mode(self):
        gp = ground(parse_program("p :- q. q."), Database(), mode="relevant")
        idx = gp.index
        n = gp.atom_count
        fresh = gp.atoms.id_of(Atom("fresh"))
        assert fresh == n
        assert gp.atoms.atom(fresh) == Atom("fresh")
        idx2 = gp.index
        assert idx2 is not idx and idx2.n_atoms == n + 1

    def test_full_mode_dense_table_roundtrip(self):
        program, database = parse_program(PROGRAM_TWO), parse_database("e(1). e(2).")
        gp = ground(program, database, mode="full")
        table = gp.atoms
        for i in range(gp.atom_count):
            assert table.get(table.atom(i)) == i
