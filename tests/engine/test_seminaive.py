"""Tests for semi-naive least-model evaluation and the upper-bound model."""

import pytest

from repro.datalog.database import Database
from repro.datalog.grounding import universe_of
from repro.datalog.parser import parse_database, parse_program
from repro.engine.seminaive import least_model, upper_bound_model
from repro.errors import GroundingError


def rows(store, pred):
    return {tuple(c.value for c in row) for row in store.rows(pred)}


class TestLeastModel:
    def test_transitive_closure(self):
        prog = parse_program(
            """
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
            """
        )
        db = parse_database("edge(1, 2). edge(2, 3). edge(3, 4).")
        store = least_model(prog, db)
        assert rows(store, "tc") == {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}

    def test_long_chain(self):
        prog = parse_program("r(X, Y) :- e(X, Y). r(X, Z) :- r(X, Y), e(Y, Z).")
        db = Database.from_dict({"e": [(i, i + 1) for i in range(60)]})
        store = least_model(prog, db)
        assert store.count("r") == 61 * 60 // 2

    def test_propositional(self):
        prog = parse_program("p :- q. q :- r. r.")
        store = least_model(prog, Database())
        assert store.contains("p", ()) and store.contains("q", ())

    def test_requires_positive(self):
        prog = parse_program("p :- not q.")
        with pytest.raises(GroundingError):
            least_model(prog, Database())

    def test_positivize_drops_negation(self):
        prog = parse_program("p(X) :- e(X), not q(X). q(X) :- e(X), not p(X).")
        db = parse_database("e(1).")
        store = least_model(prog, db, positivize=True)
        assert rows(store, "p") == {(1,)} and rows(store, "q") == {(1,)}

    def test_unbound_head_variable_enumerates_universe(self):
        # Program (2) of the paper, positivized: head variable Y is unbound.
        prog = parse_program("p(X, Y) :- e(X), not p(Y, Y).")
        db = parse_database("e(1). e(2).")
        universe = universe_of(prog, db)
        store = least_model(prog, db, positivize=True, universe=universe)
        assert rows(store, "p") == {(x, y) for x in (1, 2) for y in (1, 2)}

    def test_unbound_head_variable_empty_universe_yields_nothing(self):
        """Over an empty universe there are no ground atoms of arity >= 1,
        so the rule simply has no instances (matching full grounding)."""
        prog = parse_program("p(Y) :- q.")
        db = Database.from_dict({"q": [()]})
        store = least_model(prog, db)
        assert store.count("p") == 0 and store.contains("q", ())

    def test_facts_in_program(self):
        prog = parse_program("p(a). q(X) :- p(X).")
        store = least_model(prog, Database())
        assert rows(store, "q") == {("a",)}


class TestUpperBoundModel:
    def test_upper_bound_contains_wf_true_atoms(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 3).")
        store = upper_bound_model(prog, db, universe=universe_of(prog, db))
        # Positivized: win(X) :- move(X, Y); so 1 and 2 can win.
        assert rows(store, "win") == {(1,), (2,)}

    def test_self_supporting_cycle_excluded(self):
        # p :- p has empty least model: p is NOT in the upper bound.
        prog = parse_program("p :- p.")
        store = upper_bound_model(prog, Database())
        assert store.count("p") == 0
