"""Tests for the fact store and join primitives."""

import pytest

from repro.datalog.atoms import atom, neg, pos
from repro.datalog.database import Database
from repro.datalog.terms import Constant, Variable
from repro.engine.facts import FactStore
from repro.engine.matching import enumerate_bindings, match_atom_row, order_body_for_join


def store_with(**relations):
    db = Database.from_dict({k: v for k, v in relations.items()})
    return FactStore.from_database(db)


class TestFactStore:
    def test_add_dedupes(self):
        s = FactStore()
        assert s.add("p", (Constant(1),))
        assert not s.add("p", (Constant(1),))
        assert s.count("p") == 1

    def test_rows_matching_uses_index(self):
        s = store_with(edge=[(1, 2), (1, 3), (2, 3)])
        rows = list(s.rows_matching("edge", {0: Constant(1)}))
        assert sorted(r[1].value for r in rows) == [2, 3]

    def test_rows_matching_unbound_scans_all(self):
        s = store_with(edge=[(1, 2), (2, 3)])
        assert len(list(s.rows_matching("edge", {}))) == 2

    def test_index_stays_fresh_after_adds(self):
        s = store_with(edge=[(1, 2)])
        list(s.rows_matching("edge", {0: Constant(1)}))  # build index
        s.add("edge", (Constant(1), Constant(9)))
        rows = list(s.rows_matching("edge", {0: Constant(1)}))
        assert sorted(r[1].value for r in rows) == [2, 9]

    def test_to_database_roundtrip(self):
        db = Database.from_dict({"e": [(1, 2)], "z": [(0,)]})
        assert FactStore.from_database(db).to_database() == db

    def test_missing_predicate(self):
        s = FactStore()
        assert s.count("nope") == 0
        assert list(s.rows_matching("nope", {})) == []


class TestMatchAtomRow:
    def test_binds_variables(self):
        binding = match_atom_row(atom("e", "X", "Y"), (Constant(1), Constant(2)), {})
        assert binding == {Variable("X"): Constant(1), Variable("Y"): Constant(2)}

    def test_repeated_variable_must_agree(self):
        assert match_atom_row(atom("e", "X", "X"), (Constant(1), Constant(1)), {}) is not None
        assert match_atom_row(atom("e", "X", "X"), (Constant(1), Constant(2)), {}) is None

    def test_constant_mismatch(self):
        assert match_atom_row(atom("e", "a", "X"), (Constant("b"), Constant(2)), {}) is None

    def test_existing_binding_respected(self):
        prior = {Variable("X"): Constant(1)}
        assert match_atom_row(atom("e", "X"), (Constant(2),), prior) is None
        out = match_atom_row(atom("e", "X"), (Constant(1),), prior)
        assert out == prior and out is not prior


class TestEnumerateBindings:
    def test_two_literal_join(self):
        s = store_with(edge=[(1, 2), (2, 3), (3, 4)])
        body = [pos("edge", "X", "Y"), pos("edge", "Y", "Z")]
        results = {
            (b[Variable("X")].value, b[Variable("Z")].value)
            for b in enumerate_bindings(body, s)
        }
        assert results == {(1, 3), (2, 4)}

    def test_empty_body_single_empty_binding(self):
        assert list(enumerate_bindings([], FactStore())) == [{}]

    def test_rejects_negative_literals(self):
        with pytest.raises(ValueError):
            list(enumerate_bindings([neg("p", "X")], FactStore()))

    def test_initial_binding_constrains(self):
        s = store_with(edge=[(1, 2), (2, 3)])
        out = list(
            enumerate_bindings([pos("edge", "X", "Y")], s, {Variable("X"): Constant(2)})
        )
        assert len(out) == 1 and out[0][Variable("Y")] == Constant(3)


class TestOrderBodyForJoin:
    def test_constants_first(self):
        body = [pos("a", "X", "Y"), pos("b", "c", "X")]
        ordered = order_body_for_join(body)
        assert ordered[0].predicate == "b"

    def test_chains_follow_bound_variables(self):
        body = [pos("succ", "A1", "A2"), pos("zero", "A0"), pos("succ", "A0", "A1")]
        ordered = order_body_for_join(body)
        assert [l.predicate for l in ordered] == ["zero", "succ", "succ"]
        assert ordered[1].atom.args[0] == Variable("A0")

    def test_empty(self):
        assert order_body_for_join([]) == []
