"""Experiments E6/E7/E9: the Theorem 2, 3, and 5 variant constructions.

Each construction's claim is verified by an independent engine: fixpoint
non-existence by exhaustive SAT over the Clark completion, WF stalling by
running the well-founded interpreter.
"""

import pytest

from repro.analysis.structural import (
    is_structurally_nonuniformly_total,
    is_structurally_total,
    odd_cycle_in_program_graph,
)
from repro.constructions.theorem2 import theorem2_constant_free_variant, theorem2_variant
from repro.constructions.theorem3 import theorem3_constant_free_variant, theorem3_variant
from repro.constructions.theorem5 import negative_cycle_in_program_graph, theorem5_variant
from repro.constructions.variants import assign_arc_rules
from repro.datalog.parser import parse_program
from repro.datalog.skeleton import is_alphabetic_variant
from repro.errors import ConstructionError
from repro.semantics.completion import has_fixpoint
from repro.semantics.tie_breaking import well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model

# Programs whose graph has an odd cycle (not structurally total).
ODD_PROGRAMS = [
    "p(X, Y) :- not p(Y, Y), e(X).",                       # paper program (2) shape
    "p(a) :- not p(X), e(b).",                             # paper program (1)
    "a(X) :- not b(X), e(X). b(X) :- c(X). c(X) :- a(X), f(X).",  # 3-cycle, 1 negative
    "a :- not b. b :- not c. c :- not a.",                  # 3 negatives
    "w(X) :- m(X, Y), not w(Y).",                           # win-move
    "p :- q, not p. q :- e.",                               # self-loop via conjunction
]

# Programs with an odd cycle surviving reduction (for Theorem 3).
ODD_AFTER_REDUCTION = [
    "p :- e, not p.",
    "a(X) :- not b(X), e(X). b(X) :- c(X). c(X) :- a(X), f(X).",
    "w(X) :- m(X, Y), not w(Y).",
    "p :- q, not p. q :- e.",
]


class TestTheorem2:
    @pytest.mark.parametrize("source", ODD_PROGRAMS)
    def test_unary_variant_has_no_fixpoint(self, source):
        program = parse_program(source)
        variant, delta = theorem2_variant(program)
        assert is_alphabetic_variant(program, variant)
        assert all(arity == 1 for arity in variant.arities.values())
        assert not has_fixpoint(variant, delta, grounding="full")

    @pytest.mark.parametrize("source", ODD_PROGRAMS)
    def test_constant_free_variant_has_no_fixpoint(self, source):
        program = parse_program(source)
        variant, delta = theorem2_constant_free_variant(program)
        assert is_alphabetic_variant(program, variant)
        assert len(variant.constants) == 0
        assert all(arity == 3 for arity in variant.arities.values())
        assert not has_fixpoint(variant, delta, grounding="full")

    def test_structurally_total_program_rejected(self):
        with pytest.raises(ConstructionError):
            theorem2_variant(parse_program("p :- not q. q :- not p."))

    def test_delta_contains_b_for_all_predicates(self):
        program = parse_program("p :- e, not p.")
        _, delta = theorem2_variant(program)
        assert delta.contains("p", "b") and delta.contains("e", "b")

    def test_database_is_uniform_case(self):
        """Theorem 2 exploits the uniform setting: Δ̃ seeds IDB atoms too."""
        program = parse_program("p :- e, not p.")
        variant, delta = theorem2_variant(program)
        idb_facts = [a for a in delta.atoms() if a.predicate in variant.idb_predicates]
        assert idb_facts


class TestTheorem3:
    @pytest.mark.parametrize("source", ODD_AFTER_REDUCTION)
    def test_binary_variant_no_fixpoint_with_empty_idb(self, source):
        program = parse_program(source)
        variant, delta = theorem3_variant(program)
        assert is_alphabetic_variant(program, variant)
        assert all(arity == 2 for arity in variant.arities.values())
        # Nonuniform: Δ holds EDB facts only.
        assert all(a.predicate in variant.edb_predicates for a in delta.atoms())
        assert not has_fixpoint(variant, delta, grounding="full")

    @pytest.mark.parametrize("source", ODD_AFTER_REDUCTION)
    def test_constant_free_variant_no_fixpoint(self, source):
        program = parse_program(source)
        variant, delta = theorem3_constant_free_variant(program)
        assert is_alphabetic_variant(program, variant)
        assert len(variant.constants) == 0
        assert all(arity == 4 for arity in variant.arities.values())
        assert not has_fixpoint(variant, delta, grounding="full")

    def test_odd_cycle_through_useless_predicate_rejected(self):
        """u :- u; p :- ¬p, u is structurally nonuniformly total: no variant."""
        program = parse_program("u :- u. p :- not p, u.")
        assert is_structurally_nonuniformly_total(program)
        with pytest.raises(ConstructionError):
            theorem3_variant(program)

    def test_arc_rules_avoid_useless_witnesses(self):
        """When both a useless-infected and a clean rule witness an arc, the
        construction must pick the clean one."""
        program = parse_program(
            "u :- u. p :- not p, u. p :- not p, e."
        )
        assignments = assign_arc_rules(
            program, [("p", "p", False)], avoid_useless=True
        )
        assert assignments[0].rule_index == 2

    def test_constant_free_needs_edb(self):
        program = parse_program("p :- not p.")
        with pytest.raises(ConstructionError):
            theorem3_constant_free_variant(program)


class TestTheorem5:
    def test_even_cycle_variant_wf_stalls_but_fixpoints_exist(self):
        """The sharp case: WF is structurally incomplete on even cycles."""
        program = parse_program("p(X) :- not q(X). q(X) :- not p(X).")
        assert is_structurally_total(program)  # even cycle: TB always succeeds
        variant, delta = theorem5_variant(program)
        wf = well_founded_model(variant, delta, grounding="full")
        assert not wf.is_total
        assert has_fixpoint(variant, delta, grounding="full")
        tb = well_founded_tie_breaking(variant, delta, grounding="full")
        assert tb.is_total

    def test_odd_cycle_variant_has_no_fixpoint_at_all(self):
        program = parse_program("p(X) :- not p(X), e(X).")
        variant, delta = theorem5_variant(program)
        assert not has_fixpoint(variant, delta, grounding="full")
        assert not well_founded_model(variant, delta, grounding="full").is_total

    def test_nonuniform_variant(self):
        program = parse_program("p(X) :- e(X), not q(X). q(X) :- e(X), not p(X).")
        variant, delta = theorem5_variant(program, nonuniform=True)
        assert all(a.predicate in variant.edb_predicates for a in delta.atoms())
        wf = well_founded_model(variant, delta, grounding="full")
        assert not wf.is_total

    def test_stratified_program_rejected(self):
        with pytest.raises(ConstructionError):
            theorem5_variant(parse_program("p :- e, not q. q :- f."))

    def test_negative_cycle_finder(self):
        cycle = negative_cycle_in_program_graph(
            parse_program("p :- not q. q :- p.")
        )
        assert cycle is not None
        assert any(not positive for _, _, positive in cycle)
        predicates = [source for source, _, _ in cycle]
        assert len(set(predicates)) == len(predicates)

    def test_negative_cycle_none_when_stratified(self):
        assert negative_cycle_in_program_graph(parse_program("p :- e, not q. q :- f.")) is None


class TestCycleDefaulting:
    def test_explicit_cycle_respected(self):
        program = parse_program("a :- not a. b :- not b.")
        variant, delta = theorem2_variant(program, [("b", "b", False)])
        # designated rule is b's; a's rule is rewritten as non-participating
        assert str(variant.rules[1]) == "b(a) :- ¬b(a)."
        assert str(variant.rules[0]) == "a(b) :- ¬a(c)."

    def test_default_uses_witness(self):
        program = parse_program("a :- not a.")
        witness = odd_cycle_in_program_graph(program)
        variant_default, _ = theorem2_variant(program)
        variant_explicit, _ = theorem2_variant(program, witness.arcs)
        assert variant_default == variant_explicit
