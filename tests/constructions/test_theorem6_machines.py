"""Experiment E11: counter machines and the Theorem 6 undecidability reduction."""

import pytest

from repro.constructions.counter_machines import (
    Configuration,
    CounterMachine,
    Transition,
    alternating_machine,
    bounded_counter_machine,
    countdown_machine,
    looping_machine,
)
from repro.constructions.theorem6 import (
    machine_to_program,
    natural_database,
    random_database,
    uniformize,
)
from repro.datalog.parser import parse_program
from repro.semantics.completion import find_fixpoint, has_fixpoint
from repro.semantics.fixpoint import is_fixpoint
from repro.semantics.well_founded import well_founded_model


class TestCounterMachines:
    def test_bounded_machine_halts_on_time(self):
        result = bounded_counter_machine(3).run(100)
        assert result.halted and result.steps == 3
        assert result.final == Configuration(3, 3, 0)

    def test_looping_machine_never_halts(self):
        result = looping_machine().run(200)
        assert not result.halted and result.steps == 200

    def test_countdown_machine(self):
        m = countdown_machine(2)
        result = m.run(100)
        assert result.halted and result.steps == 5  # 2 up, 2 down, 1 halt move
        assert result.final.c1 == 0

    def test_alternating_machine_moves_through_states(self):
        states = {c.state for c in alternating_machine().trace(10)}
        assert states == {0, 1}

    def test_determinism_required(self):
        with pytest.raises(ValueError):
            CounterMachine(2, {(0, True, True): Transition(1, 0, 0)})  # missing tests

    def test_zero_decrement_rejected(self):
        transitions = {
            (0, z1, z2): Transition(1, -1 if z1 else 0, 0)
            for z1 in (False, True)
            for z2 in (False, True)
        }
        with pytest.raises(ValueError):
            CounterMachine(2, transitions)


class TestReductionProgram:
    def test_program_shape(self):
        prog = machine_to_program(bounded_counter_machine(1))
        assert {"state", "count1", "count2", "p"} <= prog.idb_predicates
        assert {"zero", "succ", "less"} <= prog.edb_predicates
        text = str(prog)
        assert "p :- ¬p, state(T, S)" in text  # troublesome rule
        assert "p :- succ(X, Y), ¬less(X, Y)." in text  # rule 1a
        assert "p :- succ(X, Y), less(Y, Z), ¬less(X, Z)." in text  # rule 1b

    def test_negation_only_on_edb_except_troublesome(self):
        """'The program will apply negation only to EDB predicates except for
        one rule.'"""
        prog = machine_to_program(countdown_machine(1))
        offending = [
            (r, lit)
            for r in prog.rules
            for lit in r.body
            if not lit.positive and lit.predicate in prog.idb_predicates
        ]
        assert len(offending) == 1
        assert offending[0][1].predicate == "p"

    def test_simulation_matches_machine_run(self):
        """The least fixpoint of the simulation rules reproduces the trace."""
        machine = countdown_machine(1)
        result = machine.run(50)
        prog = machine_to_program(machine)
        horizon = max(result.steps, machine.halting_state)
        run = well_founded_model(prog, natural_database(horizon))
        for t, config in enumerate(result.trace):
            assert run.model.value(
                parse_atom(f"state({t}, {config.state})")
            ) is True, (t, config)
            assert run.model.value(parse_atom(f"count1({t}, {config.c1})")) is True
            assert run.model.value(parse_atom(f"count2({t}, {config.c2})")) is True


class TestHaltingDirection:
    @pytest.mark.parametrize("machine,label", [
        (bounded_counter_machine(2), "bounded-2"),
        (countdown_machine(1), "countdown-1"),
    ])
    def test_halting_machine_has_no_fixpoint_on_natural_db(self, machine, label):
        result = machine.run(100)
        assert result.halted
        prog = machine_to_program(machine)
        horizon = max(result.steps, machine.halting_state)
        db = natural_database(horizon)
        assert not has_fixpoint(prog, db, grounding="edb"), label

    def test_wf_detects_the_contradiction(self):
        """The well-founded model leaves p undefined on a halting run."""
        machine = bounded_counter_machine(2)
        prog = machine_to_program(machine)
        db = natural_database(2)
        run = well_founded_model(prog, db)
        assert not run.is_total
        assert run.model.value(parse_atom("p")) is None


class TestNonHaltingDirection:
    @pytest.mark.parametrize("machine", [looping_machine(), alternating_machine()])
    def test_fixpoint_exists_on_natural_db(self, machine):
        prog = machine_to_program(machine)
        db = natural_database(4)
        model = find_fixpoint(prog, db, grounding="edb")
        assert model is not None
        assert is_fixpoint(prog, db, model)

    @pytest.mark.parametrize("seed", range(8))
    def test_fixpoint_exists_on_adversarial_dbs(self, seed):
        """Theorem 6's only-if direction quantifies over ALL databases; the
        guard rules (1a), (1b), (2) must absorb nonsense arithmetics."""
        prog = machine_to_program(alternating_machine())
        db = random_database(3, seed=seed)
        model = find_fixpoint(prog, db, grounding="edb")
        assert model is not None, f"seed {seed}"
        assert is_fixpoint(prog, db, model)

    def test_wf_total_on_natural_db_for_looping_machine(self):
        prog = machine_to_program(looping_machine())
        run = well_founded_model(prog, natural_database(4))
        assert run.is_total
        assert run.model.value(parse_atom("p")) is False


class TestUniformTransform:
    def test_guard_clash_rejected(self):
        with pytest.raises(ValueError):
            uniformize(parse_program("q :- e."))

    def test_guard_added_everywhere(self):
        prog = uniformize(parse_program("a :- e. b :- a."))
        for rule in prog.rules:
            if rule.head.predicate == "q":
                continue
            assert any(
                not lit.positive and lit.predicate == "q" for lit in rule.body
            )

    def test_q_rules_for_every_idb(self):
        prog = uniformize(parse_program("a(X) :- e(X). b :- a(Y)."))
        q_rules = [r for r in prog.rules if r.head.predicate == "q"]
        assert {r.body[0].predicate for r in q_rules} == {"a", "b"}
        # arity respected
        a_rule = next(r for r in q_rules if r.body[0].predicate == "a")
        assert a_rule.body[0].atom.arity == 1

    @pytest.mark.parametrize(
        "source",
        [
            "p :- not p, e.",
            "p :- not r. r :- not p.",
            "u :- u. p :- not p, u.",
            "p :- e, not r. r :- f.",
            "a :- not b. b :- not c. c :- not a.",
        ],
    )
    def test_nonuniform_totality_equals_uniform_of_transform(self, source):
        """The proof's claim: Π nonuniformly total ⇔ Π_q uniformly total."""
        from repro.constructions.proposition import is_total_propositional

        program = parse_program(source)
        lhs = is_total_propositional(program, nonuniform=True)
        rhs = is_total_propositional(uniformize(program), nonuniform=False)
        assert lhs == rhs


def parse_atom(text):
    from repro.datalog.parser import parse_atom as _parse

    return _parse(text)
