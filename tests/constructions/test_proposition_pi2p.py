"""Experiment E10: the §5 Proposition (Π₂ᵖ-completeness of totality)."""

import pytest

from repro.constructions.proposition import (
    formula_to_program,
    is_total_propositional,
    propositional_databases,
)
from repro.constructions.qbf import ForallExistsCNF, forall_exists_holds, random_formula
from repro.datalog.parser import parse_program
from repro.errors import ConstructionError, SemanticsError


class TestQBF:
    def test_trivially_true(self):
        f = ForallExistsCNF((), ("y1",), ((("y1", True),),))
        assert forall_exists_holds(f)

    def test_trivially_false(self):
        # clause y1 and clause ¬y1: unsatisfiable for any y
        f = ForallExistsCNF((), ("y1",), ((("y1", True),), (("y1", False),)))
        assert not forall_exists_holds(f)

    def test_universal_dependence(self):
        # ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y): y must equal ¬x — holds.
        f = ForallExistsCNF(
            ("x1",),
            ("y1",),
            ((("x1", True), ("y1", True)), (("x1", False), ("y1", False))),
        )
        assert forall_exists_holds(f)

    def test_failing_universal(self):
        # ∀x ∃y (x): fails for x = false regardless of y.
        f = ForallExistsCNF(("x1",), ("y1",), ((("x1", True),),))
        assert not forall_exists_holds(f)

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError):
            ForallExistsCNF(("v",), ("v",), ())

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            ForallExistsCNF(("x1",), (), ((("zz", True),),))

    def test_str(self):
        f = ForallExistsCNF(("x1",), ("y1",), ((("x1", True), ("y1", False)),))
        assert "∀x1" in str(f) and "¬y1" in str(f)


class TestTotalityBruteForce:
    def test_odd_trap_not_total(self):
        assert not is_total_propositional(parse_program("p :- not p, e."))

    def test_even_cycle_total(self):
        assert is_total_propositional(parse_program("p :- not q. q :- not p."))

    def test_useless_guard_nonuniform_total_but_uniform_not(self):
        """u :- u; p :- ¬p, u: with empty IDBs u stays empty (total); the
        uniform case can seed u true and kill all fixpoints."""
        prog = parse_program("u :- u. p :- not p, u.")
        assert is_total_propositional(prog, nonuniform=True)
        assert not is_total_propositional(prog, nonuniform=False)

    def test_database_guard(self):
        prog = parse_program(
            "p :- a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14, a15, a16, a17."
        )
        with pytest.raises(ConstructionError):
            is_total_propositional(prog, max_databases=1 << 10)

    def test_requires_propositional(self):
        with pytest.raises(SemanticsError):
            list(propositional_databases(parse_program("p(X) :- e(X)."), nonuniform=True))

    def test_database_enumeration_counts(self):
        prog = parse_program("p :- e, not q. q :- f.")
        uniform = list(propositional_databases(prog, nonuniform=False))
        nonuniform = list(propositional_databases(prog, nonuniform=True))
        assert len(uniform) == 2 ** 4  # e, f, p, q
        assert len(nonuniform) == 2 ** 2  # e, f


class TestReduction:
    def test_program_shape(self):
        f = ForallExistsCNF(
            ("x1",), ("y1",), ((("x1", True), ("y1", False)),)
        )
        prog = formula_to_program(f)
        text = str(prog)
        assert "p :- ¬p, ¬q, ¬edb_x1, idb_y1." in text
        assert "idb_y1 :- idb_y1, ¬q." in text
        assert "q :- idb_y1, q." in text

    @pytest.mark.parametrize("seed", range(20))
    def test_reduction_matches_brute_force_nonuniform(self, seed):
        f = random_formula(1, 1, 2, seed=seed)
        expected = forall_exists_holds(f)
        assert is_total_propositional(formula_to_program(f), nonuniform=True) == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_reduction_matches_brute_force_uniform(self, seed):
        """'We give a construction that works for both uniform and nonuniform
        totality.'"""
        f = random_formula(1, 1, 2, seed=seed)
        expected = forall_exists_holds(f)
        assert is_total_propositional(formula_to_program(f), nonuniform=False) == expected

    def test_two_universals(self):
        # ∀x1 x2 ∃y1: (x1 ∨ x2 ∨ y1) ∧ (¬y1 ∨ x1): for x1=0,x2=0 need y1 and ¬y1...
        f = ForallExistsCNF(
            ("x1", "x2"),
            ("y1",),
            (
                (("x1", True), ("x2", True), ("y1", True)),
                (("y1", False), ("x1", True)),
            ),
        )
        expected = forall_exists_holds(f)
        assert expected is False
        assert is_total_propositional(formula_to_program(f), nonuniform=True) is False

    def test_always_satisfiable_formula_total(self):
        f = ForallExistsCNF(("x1",), ("y1", "y2"), ((("y1", True), ("y2", True)),))
        assert forall_exists_holds(f)
        prog = formula_to_program(f)
        assert is_total_propositional(prog, nonuniform=True)
        assert is_total_propositional(prog, nonuniform=False)
