"""Experiment E8: circuits and the Theorem 4 P-completeness reduction."""

import pytest

from repro.constructions.circuits import (
    AND,
    INPUT,
    OR,
    Gate,
    MonotoneCircuit,
    alternating_circuit,
    random_monotone_circuit,
)
from repro.constructions.theorem4 import (
    mcvp_program,
    mcvp_via_structural_totality,
    useful_gates,
)


class TestCircuits:
    def test_and_or_evaluation(self):
        c = MonotoneCircuit(
            (Gate(INPUT), Gate(INPUT), Gate(AND, (0, 1)), Gate(OR, (0, 2))),
            output=3,
        )
        assert c.evaluate([True, False]) is True  # OR picks up input 0
        assert c.evaluate([False, True]) is False

    def test_topological_order_enforced(self):
        with pytest.raises(ValueError):
            MonotoneCircuit((Gate(AND, (1,)), Gate(INPUT)), output=0)

    def test_input_gate_without_operands(self):
        with pytest.raises(ValueError):
            MonotoneCircuit((Gate(INPUT, (0,)),), output=0)

    def test_gate_values_consistent_with_evaluate(self):
        c = random_monotone_circuit(5, 12, seed=3)
        x = [True, False, True, True, False]
        assert c.gate_values(x)[c.output] == c.evaluate(x)

    def test_alternating_circuit_shape(self):
        c = alternating_circuit(3)
        assert c.input_count == 8
        assert c.gates[c.output].kind == AND  # top layer of odd depth
        assert c.evaluate([True] * 8) is True
        assert c.evaluate([False] * 8) is False
        # killing one whole half of the bottom AND layer flips the output
        assert c.evaluate([False, True] * 4) is False

    def test_monotonicity(self):
        c = random_monotone_circuit(4, 10, seed=9)
        low = [False, True, False, True]
        high = [True, True, False, True]
        assert not (c.evaluate(low) and not c.evaluate(high))

    def test_wrong_input_length(self):
        c = random_monotone_circuit(3, 4, seed=0)
        with pytest.raises(ValueError):
            c.evaluate([True])


class TestMCVPReduction:
    def test_program_shape(self):
        c = MonotoneCircuit(
            (Gate(INPUT), Gate(INPUT), Gate(OR, (0, 1)), Gate(AND, (2, 0))),
            output=3,
        )
        prog = mcvp_program(c, [True, False])
        text = str(prog)
        assert "g1 :- g1." in text  # 0-input becomes a useless self-loop
        assert "g2 :- g0." in text and "g2 :- g1." in text  # OR: one rule each
        assert "g3 :- g2, g0." in text  # AND: one rule
        assert "p_trap :- ¬p_trap, g3." in text

    def test_true_input_is_edb(self):
        c = MonotoneCircuit((Gate(INPUT), Gate(AND, (0, 0))), output=1)
        prog = mcvp_program(c, [True])
        assert "g0" in prog.edb_predicates

    @pytest.mark.parametrize("seed", range(12))
    def test_reduction_agrees_with_evaluation(self, seed):
        c = random_monotone_circuit(4, 12, seed=seed)
        for bits in [(0, 0, 0, 0), (1, 1, 1, 1), (1, 0, 1, 0), (0, 1, 1, 0)]:
            x = [bool(b) for b in bits]
            assert c.evaluate(x) == mcvp_via_structural_totality(c, x), (seed, bits)

    @pytest.mark.parametrize("seed", range(8))
    def test_useful_iff_value_one(self, seed):
        """The proof's invariant: G_i useful ⇔ gate i evaluates to 1."""
        c = random_monotone_circuit(3, 10, seed=seed)
        for bits in [(0, 0, 0), (1, 1, 1), (1, 0, 1)]:
            x = [bool(b) for b in bits]
            expected = {i for i, v in enumerate(c.gate_values(x)) if v}
            assert useful_gates(c, x) == expected, (seed, bits)

    def test_alternating_circuit_reduction(self):
        c = alternating_circuit(2)
        for bits in range(2**4):
            x = [bool((bits >> i) & 1) for i in range(4)]
            assert c.evaluate(x) == mcvp_via_structural_totality(c, x)

    def test_wrong_assignment_length(self):
        c = random_monotone_circuit(3, 4, seed=1)
        with pytest.raises(ValueError):
            mcvp_program(c, [True])
