"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro.errors import (
    ArityError,
    CloseConflictError,
    ConstructionError,
    GroundingError,
    NotATieError,
    ParseError,
    ReproError,
    SemanticsError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in [
            ParseError,
            ValidationError,
            ArityError,
            GroundingError,
            CloseConflictError,
            NotATieError,
            SemanticsError,
            ConstructionError,
        ]:
            assert issubclass(exc_type, ReproError), exc_type

    def test_arity_error_is_validation_error(self):
        assert issubclass(ArityError, ValidationError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise CloseConflictError(3)


class TestParseErrorLocations:
    def test_message_includes_location(self):
        error = ParseError("unexpected token", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_message_without_location(self):
        error = ParseError("bad database")
        assert error.line is None
        assert "line" not in str(error)


class TestCloseConflict:
    def test_carries_atom_id(self):
        error = CloseConflictError(42)
        assert error.atom_id == 42
        assert "42" in str(error)

    def test_custom_message(self):
        error = CloseConflictError(1, "head p fired against false")
        assert "head p fired" in str(error)


class TestLibraryRaisesOwnTypes:
    def test_parse(self):
        from repro.datalog.parser import parse_program

        with pytest.raises(ParseError):
            parse_program("p(.")

    def test_arity(self):
        from repro.datalog.parser import parse_program

        with pytest.raises(ArityError):
            parse_program("p(a). p(a, b).")

    def test_grounding_guard(self):
        from repro.datalog.grounding import ground
        from repro.datalog.parser import parse_database, parse_program

        with pytest.raises(GroundingError):
            ground(
                parse_program("p(A,B,C,D,E) :- e(A), e(B), e(C), e(D), e(E)."),
                parse_database("e(1). e(2). e(3). e(4). e(5). e(6). e(7). e(8)."),
                mode="full",
                max_instances=100,
            )

    def test_semantics_domain(self):
        from repro.datalog.parser import parse_program
        from repro.semantics.stratified import stratified_model
        from repro.datalog.database import Database

        with pytest.raises(SemanticsError):
            stratified_model(parse_program("p :- not p."), Database())

    def test_construction_domain(self):
        from repro.constructions.theorem2 import theorem2_variant
        from repro.datalog.parser import parse_program

        with pytest.raises(ConstructionError):
            theorem2_variant(parse_program("p :- q."))
