"""The ``repro-ground/1`` binary artifact layer: format, cache, engine wiring."""

import json
import zlib

import pytest

from repro.api import Engine
from repro.datalog.database import Database
from repro.datalog.grounding import GroundProgram, GroundRule, AtomTable, ground
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.errors import ArtifactError, GroundingError
from repro.io.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    cache_key,
    dump_ground_program,
    load_artifact,
    pool_fingerprint,
    program_fingerprint,
    save_ground_program,
)

GAME = "win(X) :- move(X, Y), not win(Y)."
BOARD = "move(1, 2). move(2, 1). move(2, 3)."


def _game(mode="relevant"):
    return ground(parse_program(GAME), parse_database(BOARD), mode=mode)


def _true_set(solution):
    return {str(a) for a in solution.true_atoms}


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["full", "relevant", "edb"])
    def test_identical_atoms_rules_and_index(self, mode):
        gp = _game(mode)
        art = load_artifact(dump_ground_program(gp))
        gp2 = art.ground_program
        assert gp2.mode == mode
        assert gp2.program == gp.program
        assert gp2.database == gp.database
        assert gp2.universe == gp.universe
        assert gp2.atom_count == gp.atom_count
        assert {gp.atoms.atom(i) for i in range(gp.atom_count)} == {
            gp2.atoms.atom(i) for i in range(gp2.atom_count)
        }
        # Dense ids are part of the format: the loaded program is id-for-id
        # identical, not merely isomorphic.
        for r1, r2 in zip(gp.rules, gp2.rules):
            assert (r1.head, r1.pos, r1.neg, r1.rule_index, r1.substitution) == (
                r2.head,
                r2.pos,
                r2.neg,
                r2.rule_index,
                r2.substitution,
            )
        i1, i2 = gp.index, gp2.index
        assert i1.pos_occ_t == i2.pos_occ_t
        assert i1.neg_occ_t == i2.neg_occ_t
        assert i1.rules_by_head_t == i2.rules_by_head_t
        assert i1.head_of_t == i2.head_of_t
        assert bytes(i1.edb_mask) == bytes(i2.edb_mask)
        assert i1.initial_status.tobytes() == i2.initial_status.tobytes()
        assert tuple(i1.initial_valued) == tuple(i2.initial_valued)

    @pytest.mark.parametrize("mode", ["full", "relevant", "edb"])
    def test_reserialization_is_byte_identical(self, mode):
        blob = dump_ground_program(_game(mode))
        assert dump_ground_program(load_artifact(blob).ground_program) == blob

    def test_hand_built_ground_program_serializes(self):
        # No compiled CSR emitter attached: the generic re-encode path.
        program = parse_program("p :- not q.")
        table = AtomTable()
        p, q = table.id_of(parse_atom("p")), table.id_of(parse_atom("q"))
        gp = GroundProgram(program, Database(), (), "full", table)
        gp.rules = [GroundRule(head=p, pos=(), neg=(q,), rule_index=0, substitution=())]
        art = load_artifact(dump_ground_program(gp))
        assert art.ground_program.atom_count == 2
        assert art.ground_program.rules[0].neg == (q,)
        warm = Engine(art.ground_program.program, ground_program=art.ground_program)
        assert _true_set(warm.solve("well_founded")) == {"p"}

    def test_atom_table_decodes_lazily(self):
        art = load_artifact(dump_ground_program(_game()))
        table = art.ground_program.atoms
        assert not table._built
        win1 = parse_atom("win(1)")
        assert table.atom(table.get(win1)) == win1  # get() forces the lookup maps
        assert table._built

    def test_save_is_atomic_and_loadable(self, tmp_path):
        target = tmp_path / "game.repro-ground"
        save_ground_program(_game(), target)
        assert load_artifact(target).ground_program.rule_count == _game().rule_count
        assert not list(tmp_path.glob("*.tmp.*"))


class TestCorruption:
    def _blob(self):
        return dump_ground_program(_game())

    def test_short_read_truncations(self):
        blob = self._blob()
        for cut in (0, 4, 11, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ArtifactError, match="short read|bad magic"):
                load_artifact(blob[:cut])

    def test_bad_magic(self):
        blob = self._blob()
        with pytest.raises(ArtifactError, match="bad magic"):
            load_artifact(b"NOTMAGIC" + blob[8:])

    def test_trailing_garbage(self):
        with pytest.raises(ArtifactError, match="trailing garbage"):
            load_artifact(self._blob() + b"\x00")

    def test_checksum_mismatch_on_payload_flip(self):
        blob = bytearray(self._blob())
        blob[-20] ^= 0xFF  # a payload byte near the end, before the CRC
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            load_artifact(bytes(blob))

    def test_version_mismatch(self):
        blob = self._blob()
        header_len = int.from_bytes(blob[8:12], "little")
        header = json.loads(blob[12 : 12 + header_len])
        header["schema"] = "repro-ground/999"
        new_header = json.dumps(header, separators=(",", ":")).encode()
        payload = blob[12 + header_len : -4]
        crc = zlib.crc32(new_header + payload) & 0xFFFFFFFF
        rebuilt = (
            blob[:8]
            + len(new_header).to_bytes(4, "little")
            + new_header
            + payload
            + crc.to_bytes(4, "little")
        )
        with pytest.raises(ArtifactError, match="version mismatch"):
            load_artifact(rebuilt)

    def test_tampered_counts_fail_consistency(self):
        blob = self._blob()
        header_len = int.from_bytes(blob[8:12], "little")
        header = json.loads(blob[12 : 12 + header_len])
        header["counts"]["rules"] += 1
        new_header = json.dumps(header, separators=(",", ":")).encode()
        payload = blob[12 + header_len : -4]
        crc = zlib.crc32(new_header + payload) & 0xFFFFFFFF
        rebuilt = (
            blob[:8]
            + len(new_header).to_bytes(4, "little")
            + new_header
            + payload
            + crc.to_bytes(4, "little")
        )
        with pytest.raises(ArtifactError):
            load_artifact(rebuilt)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_artifact(tmp_path / "absent.repro-ground")

    def test_malformed_section_table_entries(self):
        # A CRC-valid artifact whose section table is structurally wrong
        # must fail as ArtifactError, never TypeError.
        blob = self._blob()
        header_len = int.from_bytes(blob[8:12], "little")
        header = json.loads(blob[12 : 12 + header_len])
        for bad_entry in (["heads", "i", "oops"], ["heads", "i", -1], ["heads", "i"], "heads"):
            tampered = json.loads(json.dumps(header))
            tampered["sections"][0] = bad_entry
            new_header = json.dumps(tampered, separators=(",", ":")).encode()
            payload = blob[12 + header_len : -4]
            crc = zlib.crc32(new_header + payload) & 0xFFFFFFFF
            rebuilt = (
                blob[:8]
                + len(new_header).to_bytes(4, "little")
                + new_header
                + payload
                + crc.to_bytes(4, "little")
            )
            with pytest.raises(ArtifactError, match="malformed section table"):
                load_artifact(rebuilt)

    def test_out_of_range_body_atom_id_rejected(self):
        # CRC-valid but inconsistent payload: a negative id in `pos` must
        # fail as ArtifactError, never silently index from the back.
        blob = self._blob()
        header_len = int.from_bytes(blob[8:12], "little")
        header = json.loads(blob[12 : 12 + header_len])
        payload = bytearray(blob[12 + header_len : -4])
        offset = 0
        for name, _, nbytes in header["sections"]:
            if name == "pos":
                assert nbytes >= 4
                payload[offset : offset + 4] = (-1).to_bytes(4, "little", signed=True)
                break
            offset += nbytes
        else:  # pragma: no cover - the section always exists
            pytest.fail("no pos section")
        header_blob = blob[12 : 12 + header_len]
        crc = zlib.crc32(header_blob + bytes(payload)) & 0xFFFFFFFF
        rebuilt = blob[: 12 + header_len] + bytes(payload) + crc.to_bytes(4, "little")
        with pytest.raises(ArtifactError, match="pos reference ids outside"):
            load_artifact(rebuilt)

    def test_read_artifact_header_verifies_but_skips_decode(self):
        from repro.io.artifact import read_artifact_header

        blob = self._blob()
        header = read_artifact_header(blob)
        assert header["schema"] == ARTIFACT_SCHEMA
        assert header["mode"] == "relevant"
        with pytest.raises(ArtifactError, match="checksum|short read"):
            read_artifact_header(blob[:-1])


class TestFingerprints:
    def test_program_fingerprint_is_content_addressed(self):
        p1, d1 = parse_program(GAME), parse_database(BOARD)
        p2, d2 = parse_program(GAME), parse_database(BOARD)
        assert program_fingerprint(p1, d1) == program_fingerprint(p2, d2)
        assert program_fingerprint(p1, d1) != program_fingerprint(p1, parse_database("move(9, 9)."))

    def test_pool_fingerprint_distinguishes_type_and_order(self):
        from repro.datalog.terms import Constant
        from repro.engine.plan import ConstantPool

        assert pool_fingerprint(None) == pool_fingerprint(ConstantPool())
        ints = ConstantPool([Constant(1), Constant(2)])
        strs = ConstantPool([Constant("1"), Constant("2")])
        flipped = ConstantPool([Constant(2), Constant(1)])
        assert len({pool_fingerprint(p) for p in (ints, strs, flipped)}) == 3

    def test_cache_key_varies_by_mode(self):
        p, d = parse_program(GAME), parse_database(BOARD)
        assert cache_key(p, d, "relevant") != cache_key(p, d, "full")


class TestArtifactCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        gp = _game()
        key = cache_key(gp.program, gp.database, gp.mode)
        assert cache.get(key) is None
        cache.put(key, gp)
        assert len(cache) == 1
        art = cache.get(key)
        assert art is not None
        assert art.header["schema"] == ARTIFACT_SCHEMA
        assert art.ground_program.rule_count == gp.rule_count

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        gp = _game()
        key = cache_key(gp.program, gp.database, gp.mode)
        path = cache.put(key, gp)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get(key) is None
        assert not path.exists()


class TestEngineArtifacts:
    def test_save_and_warm_start(self, tmp_path):
        engine = Engine(GAME, BOARD)
        path = engine.save_artifact(tmp_path / "game.repro-ground")
        warm = Engine.from_artifact(path)
        assert warm.ground_calls == 0
        assert warm.index_builds == 0  # the index arrives restored, not rebuilt
        assert warm.default_grounding == "relevant"
        assert "artifact_load_s" in warm.timings
        for semantics in ("well_founded", "tie_breaking", "stable"):
            assert _true_set(warm.solve(semantics)) == _true_set(engine.solve(semantics))
        # query paths ride the restored atom table and database
        assert warm.query_many(["win(1)", "win(3)"]) == engine.query_many(["win(1)", "win(3)"])

    def test_engine_artifact_cache_skips_grounding(self, tmp_path):
        cache_dir = tmp_path / "cache"
        e1 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        e1.ground_for("relevant")
        assert (e1.ground_calls, e1.artifact_hits) == (1, 0)
        e2 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        e2.ground_for("relevant")
        assert (e2.ground_calls, e2.artifact_hits, e2.index_builds) == (0, 1, 0)
        assert _true_set(e1.solve("tie_breaking")) == _true_set(e2.solve("tie_breaking"))

    def test_engine_cache_key_distinguishes_modes_and_inputs(self, tmp_path):
        cache_dir = tmp_path / "cache"
        e1 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        e1.ground_for("relevant")
        e2 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        e2.ground_for("full")
        assert e2.ground_calls == 1  # different mode: no false hit
        e3 = Engine(GAME, "move(5, 6).", artifact_cache=cache_dir)
        e3.ground_for("relevant")
        assert e3.ground_calls == 1  # different database: no false hit

    def test_cached_artifact_respects_max_instances(self, tmp_path):
        cache_dir = tmp_path / "cache"
        e1 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        e1.ground_for("relevant")
        e2 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        with pytest.raises(GroundingError):
            e2.ground_for("relevant", max_instances=1)

    def test_pool_adoption_across_modes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        e1 = Engine(GAME, BOARD, artifact_cache=cache_dir)
        e1.ground_for("relevant")
        warm = Engine(GAME, BOARD, artifact_cache=cache_dir)
        warm.ground_for("relevant")
        assert warm.artifact_hits == 1
        # Grounding another mode afterwards extends the adopted pool and
        # still produces the same models.
        assert _true_set(warm.solve("fitting", grounding="full")) == _true_set(
            e1.solve("fitting", grounding="full")
        )
