"""Tests for the default-logic bridge and the choice constructs."""

import pytest

from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.errors import ValidationError
from repro.extensions.choice import inequality_facts, one_of, subset_choice
from repro.extensions.default_logic import (
    Default,
    DefaultTheory,
    extensions,
    find_extension_tie_breaking,
    theory_to_program,
)
from repro.semantics.stable import enumerate_stable_models, is_stable_model
from repro.semantics.tie_breaking import well_founded_tie_breaking

NIXON = DefaultTheory(
    frozenset({"quaker", "republican"}),
    (
        Default(("quaker",), ("hawk",), "pacifist"),
        Default(("republican",), ("pacifist",), "hawk"),
    ),
)

TWEETY = DefaultTheory(
    frozenset({"bird", "penguin"}),
    (
        Default(("bird",), ("abnormal",), "flies"),
        Default(("penguin",), (), "abnormal"),
    ),
)


class TestDefaultTheories:
    def test_nixon_diamond_two_extensions(self):
        found = sorted(sorted(e - NIXON.facts) for e in extensions(NIXON))
        assert found == [["hawk"], ["pacifist"]]

    def test_tweety_single_extension(self):
        found = list(extensions(TWEETY))
        assert len(found) == 1
        assert "abnormal" in found[0] and "flies" not in found[0]

    def test_no_extension_theory(self):
        """(: ¬p / p) — conclude p exactly when p can be assumed false:
        the classic extensionless default."""
        theory = DefaultTheory(frozenset(), (Default((), ("p",), "p"),))
        assert list(extensions(theory)) == []
        assert find_extension_tie_breaking(theory) is None

    def test_tie_breaking_finds_an_extension_fast(self):
        found = find_extension_tie_breaking(NIXON)
        assert found is not None
        core = found - NIXON.facts
        assert core in ({"hawk"}, {"pacifist"})
        # and it is genuinely an extension:
        program, db = theory_to_program(NIXON)
        truth = frozenset()
        assert found in set(extensions(NIXON))

    def test_translation_shape(self):
        program, db = theory_to_program(TWEETY)
        text = str(program)
        assert "flies :- bird, ¬abnormal." in text
        assert "abnormal :- penguin." in text
        assert db.contains("bird") and db.contains("penguin")

    def test_conclusion_required(self):
        with pytest.raises(ValidationError):
            Default((), (), "")

    def test_facts_always_in_extensions(self):
        for extension in extensions(NIXON):
            assert NIXON.facts <= extension


class TestSubsetChoice:
    def test_two_to_the_n_models(self):
        program = Program(subset_choice("invited", "person"))
        db = Database.from_dict({"person": [("ann",), ("bob",)]})
        models = list(enumerate_stable_models(program, db, grounding="full"))
        invited_sets = {
            frozenset(a.args[0].value for a in m if a.predicate == "invited")
            for m in models
        }
        assert len(invited_sets) == 4

    def test_tie_breaking_executes_it(self):
        program = Program(subset_choice("invited", "person"))
        db = Database.from_dict({"person": [("ann",), ("bob",)]})
        run = well_founded_tie_breaking(program, db, grounding="full")
        assert run.is_total and run.free_choice_count == 2


class TestOneOf:
    def setup_db(self, names):
        db = Database.from_dict({"member": [(n,) for n in names]})
        inequality_facts(db, names)
        return db

    def test_exactly_one_stable_model_per_candidate(self):
        program = Program(one_of("leader", "member"))
        for names in (["a", "b"], ["a", "b", "c"]):
            db = self.setup_db(names)
            models = list(enumerate_stable_models(program, db, grounding="full"))
            leaders = sorted(
                a.args[0].value
                for m in models
                for a in m
                if a.predicate == "leader"
            )
            assert leaders == sorted(names), names
            for m in models:
                assert sum(1 for a in m if a.predicate == "leader") == 1

    def test_two_candidates_is_a_tie(self):
        """With two candidates the component is a tie: tie-breaking picks
        the leader directly (the §6 thesis in miniature)."""
        program = Program(one_of("leader", "member"))
        db = self.setup_db(["a", "b"])
        run = well_founded_tie_breaking(program, db, grounding="full")
        assert run.is_total
        leaders = [a for a in run.model.true_set() if a.predicate == "leader"]
        assert len(leaders) == 1
        assert is_stable_model(program, db, run.model.true_set())

    def test_three_candidates_needs_search(self):
        """Three-way mutual exclusion contains odd cycles: the interpreter
        stalls (correctly — Lemma 3 protects it from guessing wrong), while
        stable search still finds all three choices."""
        program = Program(one_of("leader", "member"))
        db = self.setup_db(["a", "b", "c"])
        run = well_founded_tie_breaking(program, db, grounding="full")
        assert not run.is_total

    def test_single_candidate_forced(self):
        program = Program(one_of("leader", "member"))
        db = self.setup_db(["solo"])
        run = well_founded_tie_breaking(program, db, grounding="full")
        assert run.is_total
        assert any(a.predicate == "leader" for a in run.model.true_set())
