"""GroundIndex: the compiled kernel view must agree with the ground rules.

Pins three invariants of :class:`repro.datalog.grounding.GroundIndex`:

* the flat CSR arrays and the tuple views describe the same adjacency;
* every compiled quantity (heads, counters, occurrence lists, M₀ status,
  EDB mask, initial worklists) matches a direct recomputation from
  ``gp.rules`` / ``gp.atoms`` / Δ;
* the index is cached on the ground program and rebuilt only if the
  program grew after compilation.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.ground.model import FALSE, TRUE, UNDEF
from repro.workloads.random_programs import random_propositional_program


def _ground_for(source, db_source="", mode="full"):
    program = parse_program(source)
    database = parse_database(db_source) if db_source else Database()
    return ground(program, database, mode=mode)


def _csr_rows(offsets, values, count):
    return [tuple(values[offsets[i] : offsets[i + 1]]) for i in range(count)]


@pytest.mark.parametrize("mode", ["full", "relevant", "edb"])
def test_csr_and_views_agree_with_rules(mode):
    gp = _ground_for(
        "win(X) :- move(X, Y), not win(Y).", "move(1, 2). move(2, 1).", mode
    )
    idx = gp.index
    n_atoms, n_rules = gp.atom_count, gp.rule_count

    # Rule → body CSR mirrors the ground rules.
    assert _csr_rows(idx.pos_off, idx.pos_atoms, n_rules) == [
        gr.pos for gr in gp.rules
    ]
    assert _csr_rows(idx.neg_off, idx.neg_atoms, n_rules) == [
        gr.neg for gr in gp.rules
    ]
    assert tuple(idx.head_of) == idx.head_of_t == tuple(gr.head for gr in gp.rules)

    # Atom → rule CSR is exactly the tuple views (ascending rule order).
    assert tuple(_csr_rows(idx.pos_occ_off, idx.pos_occ, n_atoms)) == idx.pos_occ_t
    assert tuple(_csr_rows(idx.neg_occ_off, idx.neg_occ, n_atoms)) == idx.neg_occ_t
    for a in range(n_atoms):
        assert idx.pos_occ_t[a] == tuple(
            r for r, gr in enumerate(gp.rules) if a in gr.pos
        )
        assert idx.neg_occ_t[a] == tuple(
            r for r, gr in enumerate(gp.rules) if a in gr.neg
        )

    # Counters.
    assert list(idx.body_len) == [len(gr.pos) + len(gr.neg) for gr in gp.rules]
    assert list(idx.pos_len) == [len(gr.pos) for gr in gp.rules]
    assert list(idx.support) == [
        sum(1 for gr in gp.rules if gr.head == a) for a in range(n_atoms)
    ]
    assert idx.rules_by_head_t == tuple(
        tuple(r for r, gr in enumerate(gp.rules) if gr.head == a)
        for a in range(n_atoms)
    )


def test_initial_model_matches_paper_m0():
    gp = _ground_for(
        "p(X) :- e(X), not q(X). q(a).", "e(a). e(b).", mode="full"
    )
    idx = gp.index
    table = gp.atoms
    edb = gp.program.edb_predicates
    for a in range(gp.atom_count):
        atom_ = table.atom(a)
        assert idx.edb_mask[a] == (1 if atom_.predicate in edb else 0)
        if gp.database.contains_atom(atom_):
            expected = TRUE
        elif atom_.predicate in edb:
            expected = FALSE
        else:
            expected = UNDEF
        assert idx.initial_status[a] == expected
    assert list(idx.initial_valued) == [
        a for a in range(gp.atom_count) if idx.initial_status[a] != UNDEF
    ]
    assert list(idx.empty_body_rules) == [
        r for r, gr in enumerate(gp.rules) if not gr.pos and not gr.neg
    ]
    assert list(idx.zero_support_atoms) == [
        a for a in range(gp.atom_count) if idx.support[a] == 0
    ]


def test_index_cached_and_invalidated_on_growth():
    gp = _ground_for("p :- q. q.")
    idx = gp.index
    assert gp.index is idx  # cached
    # Growing the atom table (as the grounders do mid-build) invalidates.
    from repro.datalog.atoms import Atom

    gp.atoms.id_of(Atom("fresh"))
    idx2 = gp.index
    assert idx2 is not idx
    assert idx2.n_atoms == idx.n_atoms + 1


@pytest.mark.parametrize("seed", range(4))
def test_random_programs_round_trip(seed):
    program = random_propositional_program(
        n_predicates=6, n_rules=10, edb_predicates=1, seed=seed
    )
    gp = ground(program, Database(), mode="full")
    idx = gp.index
    assert tuple(_csr_rows(idx.pos_occ_off, idx.pos_occ, gp.atom_count)) == idx.pos_occ_t
    assert tuple(_csr_rows(idx.neg_occ_off, idx.neg_occ, gp.atom_count)) == idx.neg_occ_t
    assert _csr_rows(idx.pos_off, idx.pos_atoms, gp.rule_count) == [
        gr.pos for gr in gp.rules
    ]
    assert _csr_rows(idx.neg_off, idx.neg_atoms, gp.rule_count) == [
        gr.neg for gr in gp.rules
    ]
