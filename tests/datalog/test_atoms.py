"""Unit tests for atoms and literals."""

import pytest

from repro.datalog.atoms import Atom, Literal, atom, neg, pos
from repro.datalog.terms import Constant, Variable


class TestAtom:
    def test_str_with_args(self):
        assert str(atom("edge", 1, "X")) == "edge(1, X)"

    def test_str_propositional(self):
        assert str(Atom("p")) == "p"

    def test_arity(self):
        assert atom("p", "X", "Y").arity == 2
        assert Atom("p").arity == 0

    def test_is_ground(self):
        assert atom("p", "a", 1).is_ground
        assert not atom("p", "X").is_ground
        assert Atom("p").is_ground

    def test_variables_in_order(self):
        a = atom("p", "X", "a", "Y", "X")
        assert [v.name for v in a.variables()] == ["X", "Y", "X"]

    def test_substitute_total(self):
        a = atom("p", "X", "Y")
        result = a.substitute({Variable("X"): Constant(1), Variable("Y"): Constant(2)})
        assert result == atom("p", 1, 2)

    def test_substitute_partial(self):
        a = atom("p", "X", "Y")
        result = a.substitute({Variable("X"): Constant(1)})
        assert result == atom("p", 1, "Y")

    def test_substitute_propositional_is_identity(self):
        a = Atom("p")
        assert a.substitute({}) is a

    def test_ground_key(self):
        assert atom("p", "a", 1).ground_key() == ("p", ("a", 1))

    def test_ground_key_rejects_nonground(self):
        with pytest.raises(ValueError):
            atom("p", "X").ground_key()

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_hashable_and_equal(self):
        assert atom("p", "X") == atom("p", "X")
        assert len({atom("p", "X"), atom("p", "X")}) == 1


class TestLiteral:
    def test_str_positive(self):
        assert str(pos("p", "X")) == "p(X)"

    def test_str_negative(self):
        assert str(neg("p", "X")) == "¬p(X)"

    def test_negated_roundtrip(self):
        lit = pos("p", "X")
        assert lit.negated().negated() == lit
        assert not lit.negated().positive

    def test_predicate_accessor(self):
        assert neg("q", 1).predicate == "q"

    def test_substitute(self):
        lit = neg("p", "X")
        assert lit.substitute({Variable("X"): Constant("a")}) == neg("p", "a")
