"""Printer edge cases: quoting, headers, and exact round-trips."""


from repro.datalog.atoms import Atom, atom, neg
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.printer import format_database, format_program, format_rule, format_term
from repro.datalog.rules import rule
from repro.datalog.terms import Constant, Variable


class TestFormatTerm:
    def test_variable(self):
        assert format_term(Variable("X")) == "X"

    def test_plain_constant(self):
        assert format_term(Constant("abc_1")) == "abc_1"

    def test_integer(self):
        assert format_term(Constant(-3)) == "-3"

    def test_spaces_quoted(self):
        assert format_term(Constant("new york")) == '"new york"'

    def test_uppercase_start_quoted(self):
        # would otherwise re-parse as a variable
        assert format_term(Constant("NewYork")) == '"NewYork"'

    def test_empty_string_quoted(self):
        assert format_term(Constant("")) == '""'


class TestFormatRuleAndProgram:
    def test_negation_spelled_not(self):
        r = rule(atom("p", "X"), neg("q", "X"))
        assert format_rule(r) == "p(X) :- not q(X)."

    def test_propositional(self):
        assert format_rule(rule(Atom("p"), Atom("q"))) == "p :- q."

    def test_header_comment(self):
        text = format_program(parse_program("p."), header="generated\nby test")
        assert text.startswith("% generated\n% by test\n")
        assert parse_program(text) == parse_program("p.")

    def test_empty_program(self):
        assert format_program(parse_program("")) == ""

    def test_roundtrip_with_quoted_constants(self):
        prog = parse_program('p("New York", X) :- e(X, -7).')
        assert parse_program(format_program(prog)) == prog


class TestFormatDatabase:
    def test_facts_and_header(self):
        db = Database.from_dict({"e": [(1, 2)], "z": [()]})
        text = format_database(db, header="facts")
        assert text.startswith("% facts\n")
        assert parse_database("\n".join(l for l in text.splitlines() if not l.startswith("%"))) == db

    def test_empty_database(self):
        assert format_database(Database()) == ""
