"""Unit tests for databases, skeletons, and alphabetic variants."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.skeleton import is_alphabetic_variant, skeleton_of
from repro.errors import ValidationError


class TestDatabase:
    def test_add_and_contains(self):
        db = Database()
        db.add("edge", 1, 2)
        assert db.contains("edge", 1, 2)
        assert not db.contains("edge", 2, 1)

    def test_add_atom_requires_ground(self):
        db = Database()
        with pytest.raises(ValidationError):
            db.add_atom(atom("p", "X"))

    def test_arity_consistency(self):
        db = Database()
        db.add("p", 1)
        with pytest.raises(ValidationError):
            db.add("p", 1, 2)

    def test_from_dict(self):
        db = Database.from_dict({"edge": [(1, 2)], "zero": [(0,)]})
        assert db.contains("zero", 0)

    def test_atoms_roundtrip(self):
        db = Database.from_dict({"e": [(1, 2), (2, 3)]})
        assert Database.from_atoms(db.atoms()) == db

    def test_equality_ignores_empty_relations(self):
        a = Database.from_dict({"e": [(1,)]})
        b = Database.from_dict({"e": [(1,)], "f": []})
        assert a == b

    def test_copy_is_deep(self):
        a = Database.from_dict({"e": [(1,)]})
        b = a.copy()
        b.add("e", 2)
        assert not a.contains("e", 2)

    def test_restrict(self):
        db = Database.from_dict({"e": [(1,)], "f": [(2,)]})
        assert db.restrict(["e"]).predicates() == {"e"}

    def test_constants(self):
        db = Database.from_dict({"e": [(1, "a")]})
        values = {c.value for c in db.constants()}
        assert values == {1, "a"}

    def test_len(self):
        assert len(Database.from_dict({"e": [(1,), (2,)], "f": [(3,)]})) == 3


class TestSkeleton:
    def test_paper_variants_share_skeleton(self):
        """Programs (1) and (2) of the paper are alphabetic variants."""
        one = parse_program("p(a) :- not p(X), e(b).")
        two = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        assert is_alphabetic_variant(one, two)

    def test_sign_pattern_matters(self):
        a = parse_program("p :- not q.")
        b = parse_program("p :- q.")
        assert not is_alphabetic_variant(a, b)

    def test_body_order_matters(self):
        a = parse_program("p :- q, not r.")
        b = parse_program("p :- not r, q.")
        assert not is_alphabetic_variant(a, b)

    def test_predicate_sets(self):
        sk = skeleton_of(parse_program("p(X) :- e(X), not q(X). q(Y) :- e(Y)."))
        assert sk.idb_predicates() == {"p", "q"}
        assert sk.edb_predicates() == {"e"}

    def test_as_propositional_program(self):
        sk = skeleton_of(parse_program("p(X) :- e(X), not q(X)."))
        prop = sk.as_propositional_program()
        assert prop.is_propositional
        assert str(prop) == "p :- e, ¬q."

    def test_str(self):
        sk = skeleton_of(parse_program("p(a) :- not p(X), e(b)."))
        assert str(sk) == "p :- ¬p, e."
