"""Unit tests for terms: variables, constants, coercion."""

import pytest

from repro.datalog.terms import Constant, Variable, term_from_value


class TestVariable:
    def test_str(self):
        assert str(Variable("X")) == "X"

    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_immutable(self):
        v = Variable("X")
        with pytest.raises(AttributeError):
            v.name = "Y"  # type: ignore[misc]


class TestConstant:
    def test_str_of_symbol(self):
        assert str(Constant("a")) == "a"

    def test_str_of_int(self):
        assert str(Constant(3)) == "3"

    def test_str_quotes_nonidentifier(self):
        assert str(Constant("New York")) == '"New York"'

    def test_int_and_str_payloads_distinct(self):
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2


class TestTermFromValue:
    def test_uppercase_becomes_variable(self):
        assert term_from_value("X") == Variable("X")

    def test_underscore_becomes_variable(self):
        assert term_from_value("_foo") == Variable("_foo")

    def test_lowercase_becomes_constant(self):
        assert term_from_value("a") == Constant("a")

    def test_int_becomes_constant(self):
        assert term_from_value(42) == Constant(42)

    def test_terms_pass_through(self):
        v = Variable("X")
        c = Constant("a")
        assert term_from_value(v) is v
        assert term_from_value(c) is c
