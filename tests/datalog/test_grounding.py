"""Tests for full and relevant grounding."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.database import Database
from repro.datalog.grounding import ground, universe_of
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.terms import Constant
from repro.errors import GroundingError


class TestUniverse:
    def test_constants_from_program_and_db(self):
        prog = parse_program("p(a) :- e(X).")
        db = parse_database("e(b).")
        assert {c.value for c in universe_of(prog, db)} == {"a", "b"}

    def test_extra_constants(self):
        prog = parse_program("p :- q.")
        u = universe_of(prog, Database(), [Constant(1), Constant(2)])
        assert len(u) == 2


class TestFullGrounding:
    def test_propositional_program(self):
        prog = parse_program("p :- p, not q. q :- q, not p.")
        gp = ground(prog, Database(), mode="full")
        assert gp.rule_count == 2
        assert gp.atom_count == 2  # p and q

    def test_all_atoms_materialized(self):
        prog = parse_program("p(X) :- e(X, Y).")
        db = parse_database("e(1, 2).")
        gp = ground(prog, db, mode="full")
        # universe {1,2}: p has 2 atoms, e has 4 atoms
        assert gp.atom_count == 2 + 4
        assert gp.rule_count == 4  # |U|^2 instances

    def test_instances_cover_all_substitutions(self):
        prog = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        db = parse_database("e(a).")
        gp = ground(prog, db, mode="full")
        assert gp.rule_count == 1  # universe = {a}: one substitution
        gr = gp.rules[0]
        assert gp.atoms.atom(gr.head) == atom("p", "a", "a")

    def test_dedup_of_body_atoms(self):
        prog = parse_program("p :- q, q, not q.")
        gp = ground(prog, Database(), mode="full")
        gr = gp.rules[0]
        assert len(gr.pos) == 1 and len(gr.neg) == 1
        assert gr.pos[0] == gr.neg[0]

    def test_max_instances_guard(self):
        prog = parse_program("p(A,B,C,D,E,F,G,H) :- e(A), e(B), e(C), e(D), e(E), e(F), e(G), e(H).")
        db = Database.from_dict({"e": [(i,) for i in range(10)]})
        with pytest.raises(GroundingError):
            ground(prog, db, mode="full", max_instances=10_000)

    def test_instantiated_rule_roundtrip(self):
        prog = parse_program("p(X) :- e(X), not q(X).")
        db = parse_database("e(1).")
        gp = ground(prog, db, mode="full")
        inst = gp.instantiated_rule(gp.rules[0])
        assert str(inst) == "p(1) :- e(1), ¬q(1)."


class TestRelevantGrounding:
    def test_restricts_to_upper_bound(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 3).")
        full = ground(prog, db, mode="full")
        relevant = ground(prog, db, mode="relevant")
        assert relevant.rule_count == 2  # only (1,2) and (2,3) moves
        assert full.rule_count == 9  # |U|^2

    def test_prunes_violated_negative_edb(self):
        prog = parse_program("p(X) :- e(X), not f(X).")
        db = parse_database("e(1). e(2). f(1).")
        gp = ground(prog, db, mode="relevant")
        heads = {gp.atoms.atom(r.head) for r in gp.rules}
        assert heads == {atom("p", 2)}

    def test_keeps_violated_negative_edb_when_asked(self):
        prog = parse_program("p(X) :- e(X), not f(X).")
        db = parse_database("e(1). f(1).")
        gp = ground(prog, db, mode="relevant", prune_false_negative_edb=False)
        assert gp.rule_count == 1

    def test_negative_idb_literals_kept(self):
        prog = parse_program("p(X) :- e(X), not q(X). q(X) :- e(X).")
        db = parse_database("e(1).")
        gp = ground(prog, db, mode="relevant")
        p_rule = next(r for r in gp.rules if gp.atoms.atom(r.head).predicate == "p")
        assert len(p_rule.neg) == 1

    def test_unbound_variables_enumerate_universe(self):
        prog = parse_program("p(X, Y) :- e(X), not p(Y, Y).")
        db = parse_database("e(a). e(b).")
        gp = ground(prog, db, mode="relevant")
        assert gp.rule_count == 4  # X in {a,b} via e, Y in {a,b} enumerated

    def test_counter_machine_style_chain_is_small(self):
        # [S = 2] chains: zero(A0), succ(A0, A1), succ(A1, S) — full grounding
        # would be |U|^4 per rule; relevant grounding follows the chain.
        prog = parse_program(
            "at(S) :- zero(A0), succ(A0, A1), succ(A1, S)."
        )
        db = parse_database("zero(0). succ(0, 1). succ(1, 2). succ(2, 3).")
        gp = ground(prog, db, mode="relevant")
        assert gp.rule_count == 1
        assert gp.atoms.atom(gp.rules[0].head) == atom("at", 2)

    def test_heads_subset_of_upper_bound(self):
        prog = parse_program("p(X) :- e(X). q(X) :- p(X), not r(X). r(X) :- e(X), e(X).")
        db = parse_database("e(1). e(2).")
        gp = ground(prog, db, mode="relevant")
        for gr in gp.rules:
            head_atom = gp.atoms.atom(gr.head)
            assert head_atom.predicate in prog.idb_predicates

    def test_describe(self):
        gp = ground(parse_program("p :- q."), Database(), mode="relevant")
        assert "relevant" in gp.describe()
