"""Unit tests for rules and programs (EDB/IDB split, arity validation)."""

import pytest

from repro.datalog.atoms import Atom, atom, neg, pos
from repro.datalog.program import Program
from repro.datalog.rules import Rule, rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ArityError


class TestRule:
    def test_str(self):
        r = rule(atom("win", "X"), atom("move", "X", "Y"), neg("win", "Y"))
        assert str(r) == "win(X) :- move(X, Y), ¬win(Y)."

    def test_fact_str(self):
        assert str(rule(atom("p", "a"))) == "p(a)."

    def test_is_fact(self):
        assert rule(atom("p", "a")).is_fact
        assert not rule(atom("p", "X")).is_fact
        assert not rule(atom("p", "a"), atom("q", "a")).is_fact

    def test_variables_order_head_first(self):
        r = rule(atom("p", "Y"), atom("e", "X", "Y"), neg("q", "Z"))
        assert [v.name for v in r.variables()] == ["Y", "X", "Z"]

    def test_positive_negative_body(self):
        r = rule(atom("p"), pos("a"), neg("b"), pos("c"))
        assert [l.predicate for l in r.positive_body()] == ["a", "c"]
        assert [l.predicate for l in r.negative_body()] == ["b"]

    def test_substitute(self):
        r = rule(atom("p", "X"), neg("q", "X", "Y"))
        s = r.substitute({Variable("X"): Constant(1), Variable("Y"): Constant(2)})
        assert str(s) == "p(1) :- ¬q(1, 2)."
        assert s.is_ground

    def test_atoms_accept_atom_or_literal(self):
        r = rule(atom("p"), atom("q"), neg("r"))
        assert r.body[0].positive and not r.body[1].positive


class TestProgram:
    def test_edb_idb_split(self):
        prog = Program([
            rule(atom("p", "X"), atom("e", "X"), neg("q", "X")),
            rule(atom("q", "X"), atom("e", "X"), neg("p", "X")),
        ])
        assert prog.idb_predicates == {"p", "q"}
        assert prog.edb_predicates == {"e"}

    def test_predicate_in_head_only_is_idb(self):
        prog = Program([rule(atom("p", "a"))])
        assert prog.idb_predicates == {"p"}
        assert prog.edb_predicates == set()

    def test_arity_conflict_rejected(self):
        with pytest.raises(ArityError):
            Program([
                rule(atom("p", "X"), atom("e", "X")),
                rule(atom("p", "X", "Y"), atom("e", "X")),
            ])

    def test_arity_conflict_head_vs_body(self):
        with pytest.raises(ArityError):
            Program([rule(atom("p", "X"), atom("p", "X", "Y"))])

    def test_arities(self):
        prog = Program([rule(atom("p", "X"), atom("e", "X", "Y"))])
        assert prog.arities == {"p": 1, "e": 2}

    def test_is_propositional(self):
        assert Program([rule(Atom("p"), neg("q"))]).is_propositional
        assert not Program([rule(atom("p", "X"))]).is_propositional

    def test_is_positive(self):
        assert Program([rule(Atom("p"), pos("q"))]).is_positive
        assert not Program([rule(Atom("p"), neg("q"))]).is_positive

    def test_constants(self):
        prog = Program([rule(atom("p", "a"), atom("e", "X", 3))])
        assert prog.constants == {Constant("a"), Constant(3)}

    def test_rules_for(self):
        r1 = rule(Atom("p"), pos("q"))
        r2 = rule(Atom("p"), pos("r"))
        r3 = rule(Atom("q"))
        prog = Program([r1, r2, r3])
        assert prog.rules_for("p") == (r1, r2)
        assert prog.rules_for("missing") == ()

    def test_with_rules(self):
        prog = Program([rule(Atom("p"))])
        extended = prog.with_rules([rule(Atom("q"))])
        assert len(extended) == 2 and len(prog) == 1

    def test_iteration(self):
        rules = [rule(Atom("p")), rule(Atom("q"))]
        assert list(Program(rules)) == rules
