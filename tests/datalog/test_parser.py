"""Parser tests: grammar coverage, round-tripping, error reporting."""

import pytest

from repro.datalog.atoms import atom, neg
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.printer import format_program
from repro.datalog.rules import rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError


class TestParseProgram:
    def test_simple_rule(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        assert len(prog) == 1
        r = prog.rules[0]
        assert r.head == atom("win", "X")
        assert r.body[0].atom == atom("move", "X", "Y") and r.body[0].positive
        assert str(r) == "win(X) :- move(X, Y), ¬win(Y)."

    def test_propositional_rules(self):
        prog = parse_program("p :- p, not q. q :- q, not p.")
        assert len(prog) == 2
        assert prog.is_propositional

    def test_fact(self):
        prog = parse_program("p(a).")
        assert prog.rules[0].is_fact

    def test_negation_spellings(self):
        for negation in ["not q", "!q", "¬q", "\\+ q"]:
            prog = parse_program(f"p :- {negation}.")
            assert not prog.rules[0].body[0].positive, negation

    def test_integer_and_string_constants(self):
        prog = parse_program('p(X) :- e(X, 42), f("new york").')
        e_atom = prog.rules[0].body[0].atom
        f_atom = prog.rules[0].body[1].atom
        assert e_atom.args[1] == Constant(42)
        assert f_atom.args[0] == Constant("new york")

    def test_negative_integer(self):
        prog = parse_program("p(-3).")
        assert prog.rules[0].head.args[0] == Constant(-3)

    def test_variables_uppercase_or_underscore(self):
        prog = parse_program("p(X, _y, abc).")
        args = prog.rules[0].head.args
        assert args[0] == Variable("X")
        assert args[1] == Variable("_y")
        assert args[2] == Constant("abc")

    def test_comments_ignored(self):
        prog = parse_program(
            """
            % a comment
            p(a).  # trailing comment
            q(b).
            """
        )
        assert len(prog) == 2

    def test_paper_program_1(self):
        """Program (1) of the paper: P(a) :- ¬P(x), E(b)."""
        prog = parse_program("p(a) :- not p(X), e(b).")
        assert prog.idb_predicates == {"p"}
        assert prog.edb_predicates == {"e"}

    def test_roundtrip_through_printer(self):
        source = """
        win(X) :- move(X, Y), not win(Y).
        p(a) :- not p(X), e(b).
        t :- not t.
        """
        prog = parse_program(source)
        assert parse_program(format_program(prog)) == prog


class TestParseErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("p(a)")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_program("p(a.")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            parse_program('p("abc).')

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(a).\nq(b) :- .")
        assert excinfo.value.line == 2

    def test_head_cannot_be_negative(self):
        with pytest.raises(ParseError):
            parse_program("not p :- q.")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p :- q & r.")


class TestParseDatabase:
    def test_facts(self):
        db = parse_database("edge(1, 2). edge(2, 3). start(1).")
        assert db.contains("edge", 1, 2)
        assert db.contains("start", 1)
        assert len(db) == 3

    def test_rejects_rules(self):
        with pytest.raises(ParseError):
            parse_database("p(X) :- q(X).")

    def test_rejects_nonground_facts(self):
        with pytest.raises(ParseError):
            parse_database("p(X).")


class TestParseAtom:
    def test_atom(self):
        assert parse_atom("p(X, a)") == atom("p", "X", "a")

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(X) :-")
