"""Run every docstring example in the library as a test.

The public API's doctests are part of the documentation deliverable; this
module keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES + ["repro"])
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
