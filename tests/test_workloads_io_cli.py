"""Tests for workload generators, DOT/JSON IO, and the CLI."""

import json

import pytest

from repro.analysis.structural import is_call_consistent
from repro.cli import main
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_program
from repro.io.dot import ground_graph_dot, program_graph_dot
from repro.io.json_io import (
    database_from_json,
    database_to_json,
    interpretation_to_json,
    program_from_json,
    program_to_json,
)
from repro.semantics.stratified import is_stratified
from repro.semantics.tie_breaking import well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model
from repro.workloads.families import (
    committee,
    negation_tower,
    tie_chain,
    unfounded_tower,
    win_move_cycle,
    win_move_line,
)
from repro.workloads.random_programs import (
    random_call_consistent_program,
    random_propositional_program,
    random_stratified_program,
)


class TestFamilies:
    def test_win_move_line_total(self):
        prog, db = win_move_line(20)
        run = well_founded_model(prog, db)
        assert run.is_total

    def test_win_move_even_cycle_is_draw(self):
        prog, db = win_move_cycle(4)
        run = well_founded_model(prog, db)
        assert not run.is_total
        tb = well_founded_tie_breaking(prog, db, grounding="full")
        assert tb.is_total

    def test_win_move_odd_cycle_no_fixpoint(self):
        from repro.semantics.completion import has_fixpoint

        prog, db = win_move_cycle(3)
        assert not has_fixpoint(prog, db, grounding="full")

    def test_unfounded_tower_iteration_count(self):
        prog, db = unfounded_tower(6)
        run = well_founded_model(prog, db, grounding="full")
        assert run.is_total
        assert run.iterations >= 6

    def test_tie_chain_choice_count(self):
        prog, db = tie_chain(5)
        run = well_founded_tie_breaking(prog, db, grounding="full")
        assert run.is_total
        assert run.free_choice_count == 5

    def test_negation_tower_stratified(self):
        prog, _ = negation_tower(10)
        assert is_stratified(prog)

    def test_committee_model_count(self):
        from repro.semantics.completion import count_fixpoints

        prog, db = committee(3)
        assert count_fixpoints(prog, db, grounding="full") == 8


class TestRandomGenerators:
    def test_propositional_deterministic_by_seed(self):
        a = random_propositional_program(6, 10, seed=5)
        b = random_propositional_program(6, 10, seed=5)
        assert a == b

    def test_call_consistent_guarantee(self):
        for seed in range(25):
            prog = random_call_consistent_program(8, 14, seed=seed)
            assert is_call_consistent(prog), seed

    def test_stratified_guarantee(self):
        for seed in range(25):
            prog = random_stratified_program(8, 14, seed=seed)
            assert is_stratified(prog), seed

    def test_edb_predicates_respected(self):
        prog = random_propositional_program(6, 12, edb_predicates=2, seed=1)
        assert {"r0", "r1"} & prog.edb_predicates == {"r0", "r1"} & (
            prog.predicates - prog.idb_predicates
        )

    def test_needs_idb(self):
        with pytest.raises(ValueError):
            random_propositional_program(2, 3, edb_predicates=2)


class TestDot:
    def test_program_graph_dot(self):
        dot = program_graph_dot(parse_program("p :- e, not q."))
        assert "digraph" in dot and "style=dashed" in dot

    def test_ground_graph_dot_with_model(self):
        prog = parse_program("p :- not q.")
        gp = ground(prog, Database(), mode="full")
        run = well_founded_model(prog, ground_program=gp)
        dot = ground_graph_dot(gp, run.model)
        assert "palegreen" in dot and "lightcoral" in dot

    def test_quoting(self):
        dot = program_graph_dot(parse_program('p :- e("weird name").'))
        assert "digraph" in dot


class TestJson:
    def test_program_roundtrip(self):
        prog = parse_program('win(X) :- move(X, Y), not win(Y). p(a, 3, "s").')
        assert program_from_json(program_to_json(prog)) == prog

    def test_database_roundtrip(self):
        db = Database.from_dict({"e": [(1, "a")], "z": [()]})
        assert database_from_json(database_to_json(db)) == db

    def test_interpretation_json(self):
        prog = parse_program("p :- not q. q :- not p.")
        run = well_founded_model(prog)
        payload = json.loads(interpretation_to_json(run.model))
        assert payload["total"] is False
        assert len(payload["undefined"]) == 2


class TestCLI:
    @pytest.fixture()
    def files(self, tmp_path):
        program = tmp_path / "prog.dl"
        program.write_text("win(X) :- move(X, Y), not win(Y).\n")
        db = tmp_path / "db.dl"
        db.write_text("move(1, 2). move(2, 1).\n")  # pure draw cycle
        return str(program), str(db)

    def test_analyze(self, files, capsys):
        assert main(["analyze", files[0]]) == 0
        out = capsys.readouterr().out
        assert "not structurally total" in out

    def test_run_wf(self, files, capsys):
        code = main(["run", files[0], "--db", files[1], "--semantics", "wf"])
        out = capsys.readouterr().out
        assert "well-founded model" in out
        assert code == 3  # draw cycle: not total
        assert "undefined" in out

    def test_run_wftb_total(self, files, capsys):
        code = main(["run", files[0], "--db", files[1], "--semantics", "wf-tb"])
        assert code == 0
        assert "total: True" in capsys.readouterr().out

    def test_fixpoints(self, files, capsys):
        assert main(["fixpoints", files[0], "--db", files[1]]) == 0
        out = capsys.readouterr().out
        assert "fixpoint 1:" in out

    def test_fixpoints_stable_none(self, tmp_path, capsys):
        f = tmp_path / "p.dl"
        f.write_text("p :- not p.\n")
        assert main(["fixpoints", str(f)]) == 3
        assert "no fixpoint" in capsys.readouterr().out

    def test_ground(self, files, capsys):
        assert main(["ground", files[0], "--db", files[1], "--mode", "relevant"]) == 0
        assert "GroundProgram" in capsys.readouterr().out

    def test_variant(self, files, capsys):
        assert main(["variant", files[0], "--theorem", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2 variant" in out and "win(a)" in out

    def test_variant_rejects_total_program(self, tmp_path, capsys):
        f = tmp_path / "t.dl"
        f.write_text("p :- not q. q :- not p.\n")
        assert main(["variant", str(f), "--theorem", "2"]) == 2
        assert "error" in capsys.readouterr().err

    def test_dot(self, files, capsys):
        assert main(["dot", files[0]]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_witness_found(self, files, capsys):
        assert main(["witness", files[0], "--max-constants", "1"]) == 3
        out = capsys.readouterr().out
        assert "NOT TOTAL" in out and "move(u0, u0)" in out

    def test_witness_clear(self, tmp_path, capsys):
        f = tmp_path / "total.dl"
        f.write_text("p(X) :- not q(X), e(X). q(X) :- not p(X), e(X).\n")
        assert main(["witness", str(f), "--max-constants", "1"]) == 0
        assert "no counterexample" in capsys.readouterr().out

    def test_explain(self, files, capsys):
        code = main(["explain", files[0], "win(1)", "--db", files[1], "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "win(1) =" in out and ("tie" in out or "derived" in out)

    def test_explain_wf_semantics(self, files, capsys):
        code = main(
            ["explain", files[0], "win(1)", "--db", files[1], "--semantics", "wf"]
        )
        assert code == 0
        assert "undefined" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/prog.dl"]) == 2

    def test_parse_error(self, tmp_path, capsys):
        f = tmp_path / "bad.dl"
        f.write_text("p :- \n")
        assert main(["analyze", str(f)]) == 2
