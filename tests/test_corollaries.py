"""The paper's corollaries, each as an executable check.

* Corollary 1 (§4): for structurally total programs, a fixpoint extending
  the well-founded partial model is computable in polynomial time — and the
  well-founded tie-breaking interpreter computes one.
* Corollary 2 (§4): structural totality is unchanged if "fixpoint" is
  replaced by "stable model".
* Corollary 3 (§5): non-halting machines' reduction programs are total
  w.r.t. the stable / well-founded / tie-breaking semantics too (the least
  fixpoint avoiding the troublesome rule is consistent with all of them).
* the §4 closing remark after Theorem 5: unique-stable-model structural
  totality coincides with stratification (Gire's equivalence on the
  semi-strict fragment: WF total ⇔ unique stable model).
"""

import pytest

from repro.analysis.structural import is_call_consistent, is_structurally_total
from repro.constructions.counter_machines import alternating_machine, looping_machine
from repro.constructions.theorem2 import theorem2_variant
from repro.constructions.theorem6 import machine_to_program, natural_database
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.semantics.completion import enumerate_fixpoints
from repro.semantics.fixpoint import is_fixpoint
from repro.semantics.stable import has_stable_model, is_stable_model
from repro.semantics.tie_breaking import well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model
from repro.workloads.random_programs import random_call_consistent_program


class TestCorollary1:
    """WFTB computes a fixpoint extending the WF partial model."""

    @pytest.mark.parametrize("seed", range(10))
    def test_on_random_call_consistent_programs(self, seed):
        program = random_call_consistent_program(8, 14, seed=seed)
        assert is_structurally_total(program)
        db = Database()
        wf = well_founded_model(program, db, grounding="full").model
        run = well_founded_tie_breaking(program, db, grounding="full")
        assert run.is_total
        assert is_fixpoint(program, db, run.model.true_set())
        # extension of the WF partial model:
        for atom in wf.true_atoms():
            assert run.model.value(atom) is True
        for atom in wf.false_atoms():
            assert run.model.value(atom) is False

    def test_even_cycle_instance(self):
        program = parse_program("p :- not q. q :- not p. r :- p.")
        wf = well_founded_model(program).model
        assert wf.undefined_count == 3
        run = well_founded_tie_breaking(program)
        assert run.is_total and is_fixpoint(program, Database(), run.model.true_set())


class TestCorollary2:
    """Structural totality ⇔ every variant has a stable model for every Δ."""

    @pytest.mark.parametrize("seed", range(8))
    def test_structurally_total_implies_stable_model_exists(self, seed):
        program = random_call_consistent_program(7, 12, seed=seed)
        run = well_founded_tie_breaking(program, grounding="full")
        assert run.is_total
        assert is_stable_model(program, Database(), run.model.true_set())

    def test_odd_cycle_gives_variant_without_stable_model(self):
        """Only-if direction: the Theorem 2 variant has no fixpoint, hence
        no stable model (stable ⊆ fixpoints)."""
        program = parse_program("p :- e, not p.")
        variant, delta = theorem2_variant(program)
        assert not has_stable_model(variant, delta, grounding="full")


class TestCorollary3:
    """Non-halting machines are total under all the constructive semantics."""

    @pytest.mark.parametrize("machine", [looping_machine(), alternating_machine()])
    def test_wf_is_total_and_stable_on_natural_database(self, machine):
        program = machine_to_program(machine)
        db = natural_database(4)
        run = well_founded_model(program, db)
        assert run.is_total
        trues = run.model.true_set()
        assert is_stable_model(program, db, trues)
        # tie-breaking agrees (nothing left to break):
        tb = well_founded_tie_breaking(program, db)
        assert tb.is_total and tb.model.true_set() == trues


class TestGireEquivalence:
    """§3/§4: on call-consistent (semi-strict) programs, the WF model is
    total iff the stable model is unique [Gi] — checked exhaustively on
    random call-consistent programs."""

    @pytest.mark.parametrize("seed", range(12))
    def test_wf_total_iff_unique_stable(self, seed):
        program = random_call_consistent_program(6, 10, seed=seed)
        assert is_call_consistent(program)
        db = Database()
        wf = well_founded_model(program, db, grounding="full")
        stable_models = [
            m
            for m in enumerate_fixpoints(program, db, grounding="full")
            if is_stable_model(program, db, m)
        ]
        assert stable_models, "Dung: call-consistent programs have stable models"
        if wf.is_total:
            assert len(stable_models) == 1
            assert stable_models[0] == wf.model.true_set()
        else:
            assert len(stable_models) >= 2
