"""The ``repro bench`` pipeline: record shape, CLI wiring, kernel parity."""

import json

import pytest

from repro.bench.runner import FAMILIES, SCALES, run_bench, write_bench
from repro.cli import main


class TestRunBench:
    def test_record_shape_and_phases(self):
        record = run_bench(
            scale="smoke",
            family_names=["win_move_line", "tie_chain"],
            load=False,
            workers=0,
        )
        assert record["schema"] == "repro-bench/1"
        assert record["scale"] == "smoke"
        assert set(record["families"]) == {"win_move_line", "tie_chain"}
        for family in record["families"].values():
            assert family["ground_s"] >= 0
            assert family["compile_s"] >= 0
            assert family["seed_ground_s"] >= 0
            assert family["ground_speedup"] is not None and family["ground_speedup"] > 0
            for kernel in ("kernel", "seed"):
                phases = family["kernels"][kernel]
                for key in ("init_s", "close_s", "unfounded_s", "tie_s", "run_s"):
                    assert phases[key] >= 0
                assert phases["is_total"] is True
            assert family["speedup"] is not None and family["speedup"] > 0
            # The engine solve's kernel-phase breakdown accompanies every
            # family and stays within the recorded solve time.
            solve_phases = family["solve_phases"]
            assert set(solve_phases) == {
                "close_s",
                "unfounded_s",
                "tie_select_s",
                "tie_apply_s",
                "tie_analysis_s",
                "result_s",
            }
            assert all(v >= 0 for v in solve_phases.values())
            assert sum(solve_phases.values()) <= family["engine_solve_s"] + 1e-6
            # The solution is id-native: nothing in the bench loop reads an
            # atom view before this snapshot, so no decode has been booked.
            assert solve_phases["result_s"] == 0.0
            # Every run differentially verifies the incremental (K, L)
            # sides cache against the full_recompute oracle.
            assert family["tie_sides_checked"] >= 0
            if family["semantics"] == "wf-tb":
                assert family["tie_sides_checked"] > 0
        summary = record["summary"]
        assert (
            summary["min_speedup"]
            <= summary["geomean_speedup"]
            <= summary["max_speedup"]
        )
        assert (
            summary["min_ground_speedup"]
            <= summary["geomean_ground_speedup"]
            <= summary["max_ground_speedup"]
        )

    def test_kernels_reach_identical_models(self):
        # _bench_family raises if the seed and compiled kernels disagree on
        # the final true set; covering every family at smoke scale makes the
        # bench a correctness gate as well as a timing harness.
        record = run_bench(scale="smoke", load=False, workers=0)
        assert set(record["families"]) == set(FAMILIES)
        for family in record["families"].values():
            assert (
                family["kernels"]["kernel"]["true_count"]
                == family["kernels"]["seed"]["true_count"]
            )

    def test_no_baseline_mode(self):
        record = run_bench(
            scale="smoke", family_names=["committee"], baseline=False, load=False, workers=0
        )
        family = record["families"]["committee"]
        assert "seed" not in family["kernels"]
        assert family["speedup"] is None
        assert family["seed_ground_s"] is None
        assert family["ground_speedup"] is None
        # No seed-kernel/grounder speedups; the serving (warm),
        # enumeration (trail-vs-clone), backend (python-vs-array), and
        # result-tier (query/encode) summaries are independent of the
        # frozen baselines and survive.
        assert not any(
            k.endswith("_speedup")
            and "warm" not in k
            and "enumerate" not in k
            and "backend" not in k
            and "query" not in k
            and "encode" not in k
            for k in record["summary"]
        )

    def test_no_throughput_mode(self):
        record = run_bench(
            scale="smoke",
            family_names=["committee"],
            baseline=False,
            throughput=False,
            enumerate_mode=False,
            load=False,
            backends=False,
            results_mode=False,
        )
        assert "throughput" not in record
        assert "enumerate" not in record
        assert "results" not in record
        assert record["summary"] == {}

    def test_no_backends_mode(self):
        record = run_bench(
            scale="smoke",
            family_names=["committee"],
            baseline=False,
            throughput=False,
            enumerate_mode=False,
            updates=False,
            load=False,
            backends=False,
        )
        assert record["families"]["committee"]["backends"] is None
        assert not any("backend" in k for k in record["summary"])

    def test_backend_section_cross_checks(self):
        from repro.ground.array_state import numpy_available

        record = run_bench(
            scale="smoke",
            family_names=["committee"],
            baseline=False,
            throughput=False,
            enumerate_mode=False,
            updates=False,
            load=False,
        )
        backends = record["families"]["committee"]["backends"]
        if not numpy_available():
            assert backends == {"available": False, "reason": "numpy not importable"}
            return
        # Reaching here means the runner's model + tie-decision
        # cross-check against the python kernel passed (it raises on
        # any divergence).
        assert backends["available"]
        assert backends["backend_speedup"] > 0
        assert backends["tie_rounds"]["array"] <= backends["tie_rounds"]["python"]
        assert "geomean_backend_speedup" in record["summary"]

    def test_results_mode_records_query_and_encode(self):
        record = run_bench(
            scale="smoke",
            family_names=["win_move_line", "committee"],
            baseline=False,
            throughput=False,
            enumerate_mode=False,
            updates=False,
            load=False,
            backends=False,
        )
        assert set(record["results"]) == {"win_move_line", "committee"}
        for fam in record["results"].values():
            # Reaching here means the runner's differential checks passed:
            # id-native answers == eager-materialized answers, and the
            # streamed bytes == the buffered json.dumps bytes (it raises
            # on any divergence).
            assert 0 < fam["queried"] <= fam["atoms"]
            assert fam["ids_answers_per_s"] > 0
            assert fam["eager_answers_per_s"] > 0
            assert fam["query_speedup"] > 0
            assert fam["doc_bytes"] > 0
            assert fam["stream_mb_s"] > 0
            assert fam["buffered_mb_s"] > 0
            assert fam["encode_speedup"] > 0
        summary = record["summary"]
        assert (
            summary["min_query_speedup"]
            <= summary["geomean_query_speedup"]
            <= summary["max_query_speedup"]
        )
        assert "geomean_encode_speedup" in summary

    def test_no_results_mode(self):
        record = run_bench(
            scale="smoke",
            family_names=["committee"],
            baseline=False,
            throughput=False,
            enumerate_mode=False,
            updates=False,
            load=False,
            backends=False,
            results_mode=False,
        )
        assert "results" not in record
        assert not any("query" in k or "encode" in k for k in record["summary"])

    def test_enumerate_mode_records_models_per_sec(self):
        record = run_bench(
            scale="smoke",
            family_names=["win_move_line", "committee"],
            baseline=False,
            throughput=False,
            load=False,
        )
        # Only tie-breaking families enumerate; wf-only families skip it.
        assert set(record["enumerate"]) == {"committee"}
        fam = record["enumerate"]["committee"]
        assert fam["models"] > 0
        assert fam["models"] <= fam["limit"]
        assert fam["trail_models_per_s"] > 0
        assert fam["clone_models_per_s"] > 0
        assert fam["enumerate_speedup"] > 0
        assert "geomean_enumerate_speedup" in record["summary"]

    def test_throughput_mode_records_serving_metrics(self):
        record = run_bench(
            scale="smoke",
            family_names=["win_move_line", "committee"],
            load=False,
            workers=0,
        )
        assert set(record["throughput"]) == {"win_move_line", "committee"}
        for fam in record["throughput"].values():
            assert fam["cold_start_s"] > 0
            assert fam["warm_start_s"] > 0
            assert fam["warm_speedup"] > 0
            assert fam["artifact_bytes"] > 0
            assert fam["requests_per_s"] > 0
            assert fam["requests"]["batch"] > 0
        summary = record["summary"]
        assert (
            summary["min_warm_speedup"]
            <= summary["geomean_warm_speedup"]
            <= summary["max_warm_speedup"]
        )

    def test_throughput_pool_segment_records_sharding(self):
        record = run_bench(
            scale="smoke",
            family_names=["win_move_line"],
            baseline=False,
            enumerate_mode=False,
            updates=False,
            load=False,
            workers=2,
        )
        pool = record["throughput"]["win_move_line"]["pool"]
        assert pool["workers"] == 2
        # One fresh pool per chunk size, every run cross-checked against
        # the inline batch before its rate is recorded.
        assert set(pool["chunk_req_s"]) == {"1", "2", "4"}
        assert all(rate > 0 for rate in pool["chunk_req_s"].values())
        assert str(pool["best_chunksize"]) in pool["chunk_req_s"]
        assert pool["shard_speedup"] > 0
        assert "geomean_shard_speedup" in record["summary"]

    def test_workers_zero_skips_pool_segment(self):
        record = run_bench(
            scale="smoke",
            family_names=["win_move_line"],
            baseline=False,
            enumerate_mode=False,
            updates=False,
            load=False,
            workers=0,
        )
        assert record["throughput"]["win_move_line"]["pool"] is None
        assert "geomean_shard_speedup" not in record["summary"]

    def test_load_mode_records_concurrent_metrics(self):
        record = run_bench(
            scale="smoke",
            family_names=["committee"],
            baseline=False,
            throughput=False,
            enumerate_mode=False,
            updates=False,
            load_concurrency=8,
            workers=2,
        )
        fam = record["load"]["committee"]
        assert fam["requests"] == 16
        assert fam["concurrency"] == 8
        assert fam["seeds"] > 0  # tie-breaking cycles distinct seeds
        for config in (fam["inline"], fam["workers"]):
            assert config["req_s"] > 0
            assert 0 <= config["p50_ms"] <= config["p99_ms"]
            # The integrity fleet must never shed: max_pending leaves
            # headroom above the client-side in-flight cap.
            assert config["shed"] == 0
            assert 1 <= config["max_depth"] <= fam["concurrency"]
        assert fam["inline"]["workers"] == 0
        assert fam["workers"]["workers"] == 2
        assert fam["load_speedup"] > 0
        assert "geomean_load_speedup" in record["summary"]
        assert record["cpus"] >= 1

    def test_unknown_scale_and_family_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_bench(scale="galactic")
        with pytest.raises(ReproError):
            run_bench(scale="smoke", family_names=["nope"])

    def test_tie_families_exercise_tie_phase(self):
        record = run_bench(scale="smoke", family_names=["committee"], load=False, workers=0)
        phases = record["families"]["committee"]["kernels"]["kernel"]
        assert phases["tie_choices"] > 0

    def test_unfounded_family_exercises_unfounded_phase(self):
        record = run_bench(
            scale="smoke", family_names=["unfounded_tower"], load=False, workers=0
        )
        phases = record["families"]["unfounded_tower"]["kernels"]["kernel"]
        assert phases["unfounded_iterations"] > 0


class TestBenchCli:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--scale",
                "smoke",
                "--families",
                "win_move_line",
                "--output",
                str(out),
                "--no-load",
                "--workers",
                "0",
            ]
        )
        assert code == 0
        record = json.loads(out.read_text())
        assert record["families"]["win_move_line"]["speedup"] is not None
        printed = capsys.readouterr().out
        assert "win_move_line" in printed
        assert str(out) in printed

    def test_default_output_name_embeds_revision(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "bench",
                "--scale",
                "smoke",
                "--families",
                "win_move_line",
                "--no-baseline",
                "--no-load",
                "--workers",
                "0",
            ]
        )
        assert code == 0
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        record = json.loads(written[0].read_text())
        assert written[0].name == f"BENCH_{record['revision']}.json"

    def test_scales_are_ordered(self):
        sizes = [SCALES[s] for s in ("smoke", "small", "medium", "large")]
        assert sizes == sorted(sizes) and len(set(sizes)) == len(sizes)


class TestWriteBench:
    def test_write_bench_round_trips(self, tmp_path):
        record = run_bench(
            scale="smoke", family_names=["win_move_line"], baseline=False, load=False, workers=0
        )
        path = write_bench(record, tmp_path / "out.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(record)
        )
