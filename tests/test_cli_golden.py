"""Golden-output tests for the ``repro-datalog`` CLI JSON surface.

Every analysis subcommand's ``--json`` payload is pinned against a golden
file in ``tests/golden/``: the ``repro-cli/1`` envelope, and inside it the
unified ``repro-solution/1`` schema shared by every semantics.  Timings
are wall-clock and therefore scrubbed before comparison — everything else
must be byte-for-byte deterministic (atom lists are sorted, seeds are
fixed).

To regenerate after an intentional schema change::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "golden"

PROGRAM = "win(X) :- move(X, Y), not win(Y).\n"
DATABASE = "move(1, 2). move(2, 1).\n"  # pure draw cycle

# name -> (argv tail after the program path, expected exit code, needs db)
CASES = {
    "analyze": (["--json"], 0, False),
    "run_wf": (["--db", "{db}", "--semantics", "wf", "--json"], 3, True),
    "run_wf_tb": (["--db", "{db}", "--semantics", "wf-tb", "--json"], 0, True),
    "run_fitting": (["--db", "{db}", "--semantics", "fitting", "--json"], 3, True),
    "fixpoints": (["--db", "{db}", "--json"], 0, True),
    "fixpoints_stable": (["--db", "{db}", "--stable", "--json"], 0, True),
    "ground": (["--db", "{db}", "--mode", "relevant", "--json"], 0, True),
    "witness": (["--max-constants", "1", "--json"], 3, False),
    "explain": (["win(1)", "--db", "{db}", "--seed", "1", "--json"], 0, True),
}

COMMAND_OF = {
    "analyze": "analyze",
    "run_wf": "run",
    "run_wf_tb": "run",
    "run_fitting": "run",
    "fixpoints": "fixpoints",
    "fixpoints_stable": "fixpoints",
    "ground": "ground",
    "witness": "witness",
    "explain": "explain",
}


def scrub(payload):
    """Drop wall-clock timings (the only nondeterministic part) in place."""
    if isinstance(payload, dict):
        payload.pop("timings", None)
        for value in payload.values():
            scrub(value)
    elif isinstance(payload, list):
        for value in payload:
            scrub(value)
    return payload


def build_argv(name, tmp_path):
    argv_tail, expected_code, needs_db = CASES[name]
    program = tmp_path / "prog.dl"
    program.write_text(PROGRAM)
    db = tmp_path / "db.dl"
    if needs_db:
        db.write_text(DATABASE)
    tail = [arg.replace("{db}", str(db)) for arg in argv_tail]
    return [COMMAND_OF[name], str(program)] + tail, expected_code


@pytest.mark.parametrize("name", sorted(CASES))
def test_cli_json_matches_golden(name, tmp_path, capsys):
    argv, expected_code = build_argv(name, tmp_path)
    code = main(argv)
    payload = scrub(json.loads(capsys.readouterr().out))
    assert code == expected_code
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert payload == golden


class TestRunRegistrySemantics:
    """`run --semantics` accepts any registry name/alias, not just the six."""

    @pytest.fixture()
    def prog(self, tmp_path):
        program = tmp_path / "prog.dl"
        program.write_text(PROGRAM)
        db = tmp_path / "db.dl"
        db.write_text(DATABASE)
        return str(program), str(db)

    def test_run_stable(self, prog, capsys):
        code = main(["run", prog[0], "--db", prog[1], "--semantics", "stable"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stable model:" in out and "total: True" in out

    def test_run_completion_alias(self, prog, capsys):
        code = main(["run", prog[0], "--db", prog[1], "--semantics", "fixpoints"])
        assert code == 0
        assert "completion model:" in capsys.readouterr().out

    def test_run_no_model(self, tmp_path, capsys):
        f = tmp_path / "odd.dl"
        f.write_text("p :- not p.\n")
        code = main(["run", str(f), "--semantics", "stable"])
        assert code == 3
        assert "no stable model" in capsys.readouterr().out

    def test_run_help_lists_registry(self, prog, capsys):
        assert main(["run", prog[0], "--semantics", "help"]) == 0
        out = capsys.readouterr().out
        for name in ("well_founded", "tie_breaking", "stable", "completion"):
            assert name in out

    def test_run_unknown_semantics_exit_2(self, prog, capsys):
        assert main(["run", prog[0], "--semantics", "bogus"]) == 2
        assert "unknown semantics" in capsys.readouterr().err


@pytest.mark.parametrize("name", sorted(CASES))
def test_cli_json_envelope_and_solution_schema(name, tmp_path, capsys):
    argv, _ = build_argv(name, tmp_path)
    main(argv)
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-cli/1"
    assert payload["command"] == COMMAND_OF[name]
    solutions = []
    if "solution" in payload:
        solutions = [payload["solution"]]
    elif "solutions" in payload:
        solutions = payload["solutions"]
    for solution in solutions:
        assert solution["schema"] == "repro-solution/1"
        assert set(solution) == {
            "schema",
            "semantics",
            "found",
            "total",
            "grounding",
            "model",
            "counts",
            "ties",
            "iterations",
            "timings",
        }
