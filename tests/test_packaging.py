"""Packaging smoke tests: metadata, the py.typed marker, no legacy setup.py."""

import tomllib
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]


def _pyproject() -> dict:
    return tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())


class TestPackaging:
    def test_no_legacy_setup_py(self):
        # pyproject.toml is the single source of packaging truth.
        assert not (REPO_ROOT / "setup.py").exists()

    def test_py_typed_marker_ships_with_the_package(self):
        package_dir = Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists()
        config = _pyproject()
        assert config["tool"]["setuptools"]["package-data"]["repro"] == ["py.typed"]

    def test_console_script_points_at_the_cli(self):
        config = _pyproject()
        assert config["project"]["scripts"]["repro-datalog"] == "repro.cli:main"
        from repro.cli import main

        assert callable(main)

    def test_version_matches_package(self):
        config = _pyproject()
        assert config["project"]["version"] == repro.__version__

    def test_src_layout_declared(self):
        config = _pyproject()
        assert config["tool"]["setuptools"]["package-dir"][""] == "src"
        assert config["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]
