"""Tests for program graphs, useless predicates, and structural totality."""


from repro.analysis.classify import classification_table, classify_program
from repro.analysis.program_graph import program_graph, skeleton_graph
from repro.analysis.structural import (
    is_call_consistent,
    is_structurally_nonuniformly_total,
    is_structurally_total,
    odd_cycle_in_program_graph,
    structural_report,
)
from repro.analysis.useless import reduced_program, useful_predicates, useless_predicates
from repro.datalog.parser import parse_program
from repro.datalog.skeleton import skeleton_of


class TestProgramGraph:
    def test_edges_with_signs(self):
        g = program_graph(parse_program("p(X) :- e(X), not q(X)."))
        edges = {(e.source, e.target, e.positive) for e in g.edges()}
        assert edges == {("e", "p", True), ("q", "p", False)}

    def test_all_predicates_are_nodes(self):
        g = program_graph(parse_program("p :- e."))
        assert set(g.nodes) == {"e", "p"}

    def test_skeleton_graph_matches(self):
        prog = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        a = program_graph(prog)
        b = skeleton_graph(skeleton_of(prog))
        assert {(e.source, e.target, e.positive) for e in a.edges()} == {
            (e.source, e.target, e.positive) for e in b.edges()
        }

    def test_parallel_signed_edges(self):
        g = program_graph(parse_program("p :- q, not q."))
        assert g.edge_count == 2


class TestUselessPredicates:
    def test_self_loop_is_useless(self):
        assert useless_predicates(parse_program("u :- u.")) == {"u"}

    def test_mutual_recursion_without_base_is_useless(self):
        prog = parse_program("a :- b. b :- a.")
        assert useless_predicates(prog) == {"a", "b"}

    def test_base_case_makes_useful(self):
        prog = parse_program("a :- b. b :- a. a :- e.")
        assert useless_predicates(prog) == set()

    def test_negative_leaves_are_fine(self):
        """Expansions may end in negative literals: q :- ¬r is useful."""
        prog = parse_program("q :- not r. r :- r.")
        assert useful_predicates(prog) >= {"q"}
        assert useless_predicates(prog) == {"r"}

    def test_usefulness_propagates_through_conjunction(self):
        prog = parse_program("p :- q, u. q :- e. u :- u.")
        # p needs u positively; u is useless, so p is useless too.
        assert useless_predicates(prog) == {"p", "u"}

    def test_edb_always_useful(self):
        prog = parse_program("p :- e.")
        assert "e" in useful_predicates(prog)

    def test_facts_are_useful(self):
        assert useless_predicates(parse_program("p. q :- p.")) == set()

    def test_matches_skeleton_unfounded_set(self):
        """§4: useless predicates = largest unfounded set of the skeleton
        as a propositional program with EDB propositions true."""
        from repro.datalog.database import Database
        from repro.datalog.grounding import ground
        from repro.ground.state import GroundGraphState

        source = "p :- q, e. q :- not r. r :- r. s :- r, e. t :- not s."
        prog = parse_program(source)
        skeleton = skeleton_of(prog)
        prop = skeleton.as_propositional_program()
        db = Database.from_dict({name: [()] for name in skeleton.edb_predicates()})
        gp = ground(prop, db, mode="full")
        state = GroundGraphState(gp)
        state.close()
        unfounded = {gp.atoms.atom(i).predicate for i in state.unfounded_atoms()}
        assert unfounded == set(useless_predicates(prog))


class TestReducedProgram:
    def test_drops_rules_with_positive_useless(self):
        prog = parse_program("u :- u. p :- e, u.")
        assert str(reduced_program(prog)) == ""

    def test_erases_negative_useless_occurrences(self):
        prog = parse_program("u :- u. p :- e, not u.")
        assert str(reduced_program(prog)) == "p :- e."

    def test_no_useless_returns_same_program(self):
        prog = parse_program("p :- e.")
        assert reduced_program(prog) is prog

    def test_cascading_uselessness(self):
        prog = parse_program("a :- b. b :- a. c :- not a, e. d :- b, e.")
        red = reduced_program(prog)
        assert str(red) == "c :- e."


class TestStructuralTotality:
    def test_odd_self_loop(self):
        prog = parse_program("p :- not p.")
        assert not is_structurally_total(prog)
        cycle = odd_cycle_in_program_graph(prog)
        assert cycle.predicates == ("p",) and cycle.negative_count == 1

    def test_even_negative_cycle_total(self):
        assert is_structurally_total(parse_program("p :- not q. q :- not p."))

    def test_paper_program_1_not_structurally_total(self):
        """§1: program (1) is total but NOT structurally total."""
        assert not is_structurally_total(parse_program("p(a) :- not p(X), e(b)."))

    def test_three_negative_triangle(self):
        prog = parse_program("p1 :- not p2. p2 :- not p3. p3 :- not p1.")
        assert not is_structurally_total(prog)
        assert odd_cycle_in_program_graph(prog).negative_count == 3

    def test_positive_cycles_harmless(self):
        assert is_structurally_total(parse_program("p :- q. q :- p."))

    def test_mixed_cycle_parity(self):
        # cycle p -> q (neg) -> p (neg): two negatives, even; plus odd one via r
        prog = parse_program("p :- not q. q :- not p. q :- not r. r :- q.")
        # cycle q -> r(pos) -> q(neg): one negative => odd
        assert not is_structurally_total(prog)

    def test_call_consistent_alias(self):
        prog = parse_program("p :- not q. q :- not p.")
        assert is_call_consistent(prog)

    def test_nonuniform_ignores_useless_odd_cycles(self):
        """Theorem 3 + Lemma 4: odd cycles through useless predicates don't
        matter when IDBs start empty."""
        prog = parse_program("u :- u. p :- not p, u.")
        assert not is_structurally_total(prog)
        assert is_structurally_nonuniformly_total(prog)

    def test_nonuniform_detects_surviving_odd_cycle(self):
        prog = parse_program("p :- not p, e.")
        assert not is_structurally_nonuniformly_total(prog)

    def test_odd_cycle_partly_useless_still_counts_if_reduced_keeps_it(self):
        # q is useful (q :- e); odd cycle p -> q -> p survives reduction.
        prog = parse_program("p :- not q. q :- p. q :- e.")
        assert not is_structurally_total(prog)
        assert not is_structurally_nonuniformly_total(prog)

    def test_report_witnesses(self):
        report = structural_report(parse_program("u :- u. p :- not p, u. z :- not z, e."))
        assert not report.structurally_total
        assert not report.structurally_nonuniformly_total
        assert report.useless == {"u", "p"}
        # hmm: p has only rule with positive useless u -> p useless too
        assert report.reduced_odd_cycle.predicates == ("z",)


class TestClassification:
    def test_tightest_class_ladder(self):
        cases = {
            "tc(X,Y) :- e(X,Y).": "positive",
            "p :- e, not q. q :- f.": "stratified",
            "p :- not q. q :- not p.": "call-consistent",
            "u :- u. p :- not p, u.": "structurally nonuniformly total",
            "p :- not p.": "not structurally total",
        }
        for source, expected in cases.items():
            assert classify_program(parse_program(source)).tightest_class == expected, source

    def test_table_renders(self):
        programs = {
            "winmove": parse_program("win(X) :- move(X, Y), not win(Y)."),
            "oddloop": parse_program("p :- not p."),
        }
        table = classification_table(programs)
        assert "winmove" in table and "oddloop" in table

    def test_str_rendering(self):
        text = str(classify_program(parse_program("p :- not p.")))
        assert "not structurally total" in text and "odd cycle" in text
