"""Tests for dependency analysis and the query API."""

import pytest

from repro.analysis.dependencies import (
    depends_on,
    negation_depth,
    negative_dependencies,
    relevant_subprogram,
)
from repro.datalog.parser import parse_database, parse_program
from repro.errors import SemanticsError
from repro.semantics.queries import query
from repro.semantics.well_founded import well_founded_model


class TestDependsOn:
    def test_transitive_cone(self):
        prog = parse_program("a :- b. b :- not c. c :- d. x :- y.")
        assert depends_on(prog, "a") == {"a", "b", "c", "d"}

    def test_unknown_predicate(self):
        prog = parse_program("a :- b.")
        assert depends_on(prog, "zz") == {"zz"}

    def test_cycle(self):
        prog = parse_program("a :- b. b :- a.")
        assert depends_on(prog, "a") == {"a", "b"}

    def test_self_only(self):
        prog = parse_program("a :- e. b :- f.")
        assert depends_on(prog, "a") == {"a", "e"}


class TestNegativeDependencies:
    def test_direct_negation(self):
        prog = parse_program("a :- not b. b :- c.")
        assert negative_dependencies(prog, "a") == {"b", "c"}

    def test_positive_only(self):
        prog = parse_program("a :- b. b :- c.")
        assert negative_dependencies(prog, "a") == set()

    def test_negation_below_positive(self):
        prog = parse_program("a :- b. b :- not c.")
        assert negative_dependencies(prog, "a") == {"c"}


class TestNegationDepth:
    def test_tower(self):
        prog = parse_program("a :- not b. b :- not c. c :- e.")
        assert negation_depth(prog) == {"a": 2, "b": 1, "c": 0, "e": 0}

    def test_cycle_through_negation_is_none(self):
        prog = parse_program("p :- not q. q :- p.")
        depths = negation_depth(prog)
        assert depths["p"] is None and depths["q"] is None

    def test_positive_cycle_finite(self):
        prog = parse_program("p :- q. q :- p. r :- not p.")
        depths = negation_depth(prog)
        assert depths["p"] == 0 and depths["r"] == 1

    def test_downstream_of_poisoned_is_none(self):
        prog = parse_program("p :- not p. r :- p.")
        assert negation_depth(prog)["r"] is None

    def test_matches_stratification_when_finite(self):
        from repro.semantics.stratified import stratification

        prog = parse_program(
            "reach(Y) :- reach(X), edge(X, Y). reach(X) :- start(X). "
            "unreached(X) :- node(X), not reach(X). audit(X) :- unreached(X), not flag(X)."
        )
        depths = negation_depth(prog)
        strat = stratification(prog)
        for predicate, depth in depths.items():
            assert depth == strat.level[predicate], predicate


class TestRelevantSubprogram:
    def test_cuts_unrelated_rules(self):
        prog = parse_program("a :- b. b :- not c. c :- f. d :- e.")
        sub = relevant_subprogram(prog, ["a"])
        assert {r.head.predicate for r in sub.rules} == {"a", "b", "c"}

    def test_multiple_roots(self):
        prog = parse_program("a :- b. d :- e. x :- y.")
        sub = relevant_subprogram(prog, ["a", "d"])
        assert {r.head.predicate for r in sub.rules} == {"a", "d"}

    def test_semantics_preserved_on_cone(self):
        prog = parse_program("a :- not b. b :- c. junk :- not junk.")
        full = well_founded_model(relevant_subprogram(prog, ["a"]))
        assert full.is_total  # the odd loop on junk is gone
        assert full.model.value(parse_program("a.").rules[0].head) is True


class TestQuery:
    def test_query_ignores_unrelated_odd_loops(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y). junk :- not junk.")
        db = parse_database("move(1, 2).")
        result = query(prog, db, "win")
        assert result.total and result.holds(1) and not result.holds(2)

    def test_query_reports_undefined_rows(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 1).")
        result = query(prog, db, "win")
        assert not result.total
        assert result.undefined_rows == {(1,), (2,)}

    def test_tie_breaking_query_totalizes(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 1).")
        result = query(prog, db, "win", semantics="tie-breaking")
        assert result.total
        assert len(result.true_rows) == 1  # one side of the draw wins

    def test_edb_query(self):
        prog = parse_program("p(X) :- e(X).")
        db = parse_database("e(1). e(2).")
        result = query(prog, db, "e")
        assert result.true_rows == {(1,), (2,)}

    def test_unknown_predicate_rejected(self):
        with pytest.raises(SemanticsError):
            query(parse_program("p :- q."), parse_database(""), "nope")

    def test_unknown_semantics_rejected(self):
        with pytest.raises(SemanticsError):
            query(parse_program("p :- q."), parse_database(""), "p", semantics="magic")
