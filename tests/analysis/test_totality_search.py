"""Tests for the bounded nontotality search (the §5 r.e. procedure)."""

import pytest

from repro.analysis.totality_search import candidate_databases, search_nontotality_witness
from repro.constructions.theorem2 import theorem2_variant
from repro.datalog.parser import parse_program
from repro.errors import SemanticsError
from repro.semantics.completion import has_fixpoint


class TestCandidateDatabases:
    def test_propositional_nonuniform(self):
        prog = parse_program("p :- e, not p.")
        dbs = list(candidate_databases(prog, max_constants=0))
        # e present or absent
        assert len(dbs) == 2

    def test_uniform_includes_idb(self):
        prog = parse_program("p :- e, not p.")
        dbs = list(candidate_databases(prog, max_constants=0, nonuniform=False))
        assert len(dbs) == 4

    def test_symmetry_reduction(self):
        prog = parse_program("p(X) :- e(X), not p(X).")
        dbs = list(candidate_databases(prog, max_constants=2))
        # universes: 0 constants -> {} ; 1 -> e(u0) or not; 2 -> e-subsets
        # up to permutation: {}, {e(u0)}, {e(u0), e(u1)}  (plus size-0/1 dups
        # filtered per size).  No two yielded dbs may be permutations.
        raw = [frozenset((p, tuple(str(c) for c in row)) for p, row in db.frozen()) for db in dbs]
        assert len(raw) == len(set(raw))

    def test_blowup_guard(self):
        prog = parse_program("p(X, Y, Z) :- e(X, Y, Z), not p(X, X, X).")
        with pytest.raises(SemanticsError):
            list(candidate_databases(prog, max_constants=3))


class TestSearch:
    def test_program_2_witness_found(self):
        """Paper program (2): not total — any nonempty E kills all fixpoints."""
        prog = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        witness = search_nontotality_witness(prog, max_constants=1)
        assert witness is not None
        assert not has_fixpoint(prog, witness, grounding="edb")

    def test_program_1_no_small_witness(self):
        """Paper program (1): total — no counterexample at any bound we try."""
        prog = parse_program("p(a) :- not p(X), e(b).")
        assert search_nontotality_witness(prog, max_constants=2) is None

    def test_propositional_odd_loop(self):
        prog = parse_program("p :- not p.")
        witness = search_nontotality_witness(prog, max_constants=0)
        assert witness is not None and len(witness) == 0  # the empty database

    def test_guarded_odd_loop_needs_edb_fact(self):
        prog = parse_program("p :- not p, e.")
        witness = search_nontotality_witness(prog, max_constants=0)
        assert witness is not None and witness.contains("e")

    def test_win_move_odd_board(self):
        """win-move is not total: a self-loop move is the smallest bad board."""
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        witness = search_nontotality_witness(prog, max_constants=1)
        assert witness is not None
        assert witness.contains("move", "u0", "u0")

    def test_call_consistent_has_no_witness(self):
        prog = parse_program("p(X) :- e(X), not q(X). q(X) :- e(X), not p(X).")
        assert search_nontotality_witness(prog, max_constants=2) is None

    def test_uniform_search_catches_idb_seeding(self):
        """u :- u; p :- ¬p, u is nonuniformly total but NOT uniformly total:
        the witness must seed the IDB proposition u."""
        prog = parse_program("u :- u. p :- not p, u.")
        assert search_nontotality_witness(prog, max_constants=0, nonuniform=True) is None
        witness = search_nontotality_witness(prog, max_constants=0, nonuniform=False)
        assert witness is not None and witness.contains("u")

    def test_theorem2_variant_is_refuted_by_search(self):
        """The Theorem 2 database is a witness; the search finds one too
        (maybe a smaller one)."""
        program = parse_program("p :- e, not p.")
        variant, _delta = theorem2_variant(program)
        witness = search_nontotality_witness(variant, max_constants=2, nonuniform=False)
        assert witness is not None
