"""Tests for the pure and well-founded tie-breaking interpreters (§3)."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.semantics.choices import FewestTrue, FirstSideTrue, MostTrue, RandomChoice, SecondSideTrue
from repro.semantics.fixpoint import is_fixpoint
from repro.semantics.stable import is_stable_model
from repro.semantics.tie_breaking import (
    enumerate_tie_breaking_models,
    pure_tie_breaking,
    well_founded_tie_breaking,
)
from repro.semantics.well_founded import well_founded_model


class TestPureTieBreaking:
    def test_archetype_two_models(self):
        """P(x) :- ¬Q(x); Q(x) :- ¬P(x) — the paper's archetypical program."""
        prog = parse_program("p(X) :- not q(X), d(X). q(X) :- not p(X), d(X).")
        db = parse_database("d(1).")
        run = pure_tie_breaking(prog, db)
        assert run.is_total
        p, q = run.model.value(atom("p", 1)), run.model.value(atom("q", 1))
        assert p != q  # exactly one side true

    def test_result_is_fixpoint_when_total(self):
        """Lemma 2: a total tie-breaking model is a fixpoint."""
        prog = parse_program("p :- not q. q :- not p. r :- p, not s. s :- not r.")
        for policy in [FirstSideTrue(), SecondSideTrue(), FewestTrue(), MostTrue()]:
            run = pure_tie_breaking(prog, policy=policy)
            assert run.is_total
            assert is_fixpoint(prog, Database(), run.model.true_set())

    def test_unfounded_pair_may_become_true(self):
        """§3: pure TB on p :- p,¬q / q :- q,¬p sets one true — differs from WF."""
        prog = parse_program("p :- p, not q. q :- q, not p.")
        run = pure_tie_breaking(prog)
        assert run.is_total
        trues = run.model.true_set()
        assert len(trues) == 1  # exactly one of p, q
        # It is a fixpoint but NOT stable (paper's observation after Lemma 3).
        assert is_fixpoint(prog, Database(), trues)
        assert not is_stable_model(prog, Database(), trues)

    def test_stalls_on_odd_component(self):
        """The 3-negative cycle is not a tie: pure TB cannot assign anything."""
        prog = parse_program(
            "p1 :- not p2, not p3. p2 :- not p1, not p3. p3 :- not p1, not p2."
        )
        run = pure_tie_breaking(prog)
        assert not run.is_total
        assert run.model.undefined_count == 3
        assert run.choices == ()

    def test_forced_choice_on_positive_loop(self):
        """A trivially-tied positive loop has an empty side: orientation forced false."""
        prog = parse_program("p :- p.")
        run = pure_tie_breaking(prog)
        assert run.is_total
        assert run.model.value(Atom("p")) is False
        assert len(run.choices) == 1 and run.choices[0].forced

    def test_choice_trace_recorded(self):
        prog = parse_program("p :- not q. q :- not p.")
        run = pure_tie_breaking(prog)
        assert run.free_choice_count == 1
        choice = run.choices[0]
        assert {a.predicate for a in choice.made_true | choice.made_false} == {"p", "q"}


class TestWellFoundedTieBreaking:
    def test_extends_well_founded(self):
        """WFTB agrees with WF wherever WF is defined (consistency, §3)."""
        prog = parse_program(
            "a :- a. p :- not q. q :- not p. r :- p. dead :- dead, not p."
        )
        wf = well_founded_model(prog, grounding="full")
        tb = well_founded_tie_breaking(prog, grounding="full")
        assert tb.is_total
        for a in [Atom("a")]:
            assert wf.model.value(a) is False
            assert tb.model.value(a) is False

    def test_unfounded_pair_stays_false(self):
        """Unlike pure TB, WFTB falsifies the unfounded pair (paper §3)."""
        prog = parse_program("p :- p, not q. q :- q, not p.")
        run = well_founded_tie_breaking(prog, grounding="full")
        assert run.is_total
        assert run.model.value(Atom("p")) is False
        assert run.model.value(Atom("q")) is False
        assert run.choices == ()  # resolved by the unfounded step, no ties broken

    def test_total_result_is_stable(self):
        """Lemma 3: total WFTB models are stable models."""
        prog = parse_program(
            "p :- not q. q :- not p. r :- p, not s. s :- not r, not q."
        )
        for policy in [FirstSideTrue(), SecondSideTrue(), RandomChoice(7)]:
            run = well_founded_tie_breaking(prog, policy=policy, grounding="full")
            assert run.is_total
            assert is_stable_model(prog, Database(), run.model.true_set(), method="reduct")
            assert is_stable_model(
                prog, Database(), run.model.true_set(), method="close", grounding="full"
            )

    def test_deviates_from_wf_only_when_stuck(self):
        """§3: WFTB = WF until WF stalls, then breaks one tie and continues."""
        prog = parse_program("p :- not q. q :- not p.")
        wf = well_founded_model(prog)
        assert not wf.is_total
        tb = well_founded_tie_breaking(prog)
        assert tb.is_total and tb.free_choice_count == 1

    def test_stalls_when_no_tie_no_unfounded(self):
        prog = parse_program(
            "p1 :- not p2, not p3. p2 :- not p1, not p3. p3 :- not p1, not p2."
        )
        run = well_founded_tie_breaking(prog)
        assert not run.is_total

    def test_mixed_pipeline(self):
        """Unfounded sets, forced ties, and free ties in one program."""
        prog = parse_program(
            """
            ghost :- ghost.
            p :- not q. q :- not p.
            good :- p, not ghost.
            """
        )
        run = well_founded_tie_breaking(prog, grounding="full")
        assert run.is_total
        assert run.model.value(Atom("ghost")) is False
        assert run.model.value(Atom("good")) == run.model.value(Atom("p"))


class TestEnumeration:
    def test_two_cycle_enumerates_both(self):
        prog = parse_program("p :- not q. q :- not p.")
        models = {
            frozenset(str(a) for a in run.model.true_set())
            for run in enumerate_tie_breaking_models(prog)
        }
        assert models == {frozenset({"p"}), frozenset({"q"})}

    def test_two_independent_ties_four_outcomes(self):
        prog = parse_program(
            "p :- not q. q :- not p. r :- not s. s :- not r."
        )
        runs = list(enumerate_tie_breaking_models(prog))
        models = {frozenset(str(a) for a in r.model.true_set()) for r in runs}
        assert len(models) == 4

    def test_all_enumerated_totals_are_stable_for_wf_variant(self):
        prog = parse_program("p :- not q. q :- not p. r :- p, not r2. r2 :- not r.")
        for run in enumerate_tie_breaking_models(prog, variant="well-founded"):
            if run.is_total:
                assert is_stable_model(prog, Database(), run.model.true_set())

    def test_limit(self):
        prog = parse_program(
            "a :- not b. b :- not a. c :- not d. d :- not c. e :- not f. f :- not e."
        )
        runs = list(enumerate_tie_breaking_models(prog, limit=3))
        assert len(runs) == 3

    def test_pure_variant(self):
        prog = parse_program("p :- p, not q. q :- q, not p.")
        models = {
            frozenset(str(a) for a in run.model.true_set())
            for run in enumerate_tie_breaking_models(prog, variant="pure")
        }
        assert models == {frozenset({"p"}), frozenset({"q"})}

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            list(enumerate_tie_breaking_models(parse_program("p."), variant="bogus"))


class TestChoiceDependence:
    def test_choices_can_decide_totality(self):
        """§3: some programs reach a fixpoint under one orientation only.

        p :- ¬q. q :- ¬p. Then choosing p true enables the odd trap on r:
            r :- p, ¬r.
        Choosing q true leaves r unsupported (false) and the model total.
        """
        prog = parse_program("p :- not q. q :- not p. r :- p, not r.")
        outcomes = {}
        for run in enumerate_tie_breaking_models(prog, variant="well-founded"):
            key = frozenset(str(a) for a in run.model.true_set() if a.predicate in "pq")
            outcomes[key] = run.is_total
        assert outcomes[frozenset({"q"})] is True
        assert outcomes[frozenset({"p"})] is False
