"""Experiment E5: every worked example in the paper, verified literally.

Each test cites the paper location it reproduces.
"""

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.skeleton import is_alphabetic_variant
from repro.semantics import (
    enumerate_fixpoints,
    enumerate_stable_models,
    has_fixpoint,
    is_fixpoint,
    is_stable_model,
    pure_tie_breaking,
    well_founded_model,
    well_founded_tie_breaking,
)


class TestProgram1And2:
    """§1: program (1) is total but its alphabetic variant (2) is not."""

    def test_program_1_has_fixpoint_with_nonempty_e(self):
        prog = parse_program("p(a) :- not p(X), e(b).")
        db = parse_database("e(b).")
        assert has_fixpoint(prog, db)
        run = well_founded_model(prog, db)
        assert run.is_total and run.model.value(atom("p", "a")) is True

    def test_program_1_has_fixpoint_with_empty_e(self):
        prog = parse_program("p(a) :- not p(X), e(b).")
        db = Database()
        assert has_fixpoint(prog, db)

    def test_program_2_is_alphabetic_variant_of_1(self):
        one = parse_program("p(a) :- not p(X), e(b).")
        two = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        assert is_alphabetic_variant(one, two)

    def test_program_2_has_no_fixpoint_when_e_nonempty(self):
        """(2) 'has no fixpoint whenever E is nonempty'."""
        prog = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        db = parse_database("e(a).")
        assert not has_fixpoint(prog, db)

    def test_program_2_has_fixpoint_when_e_empty(self):
        prog = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        # Universe must be nonempty for the claim to be interesting: add an
        # unused constant via another EDB fact.
        db = parse_database("f(a).")
        assert has_fixpoint(prog, db)


class TestUnfoundedPairExample:
    """§3: p :- p, ¬q and q :- q, ¬p."""

    PROG = "p :- p, not q. q :- q, not p."

    def test_ground_graph_is_a_tie_broken_by_pure(self):
        run = pure_tie_breaking(parse_program(self.PROG))
        assert run.is_total
        assert len(run.model.true_set()) == 1

    def test_wf_sets_both_false(self):
        run = well_founded_model(parse_program(self.PROG), grounding="full")
        assert run.model.value(Atom("p")) is False
        assert run.model.value(Atom("q")) is False

    def test_pure_result_is_fixpoint_but_not_stable(self):
        """'this version may produce a fixpoint that is not a stable model'."""
        prog = parse_program(self.PROG)
        run = pure_tie_breaking(prog)
        trues = run.model.true_set()
        assert is_fixpoint(prog, Database(), trues)
        assert not is_stable_model(prog, Database(), trues)

    def test_only_stable_model_has_both_false(self):
        """'The only stable model has both propositions false.'"""
        models = list(enumerate_stable_models(parse_program(self.PROG)))
        assert models == [frozenset()]

    def test_wftb_agrees_with_wf_here(self):
        run = well_founded_tie_breaking(parse_program(self.PROG), grounding="full")
        assert run.model.true_set() == frozenset()


class TestThreeRuleExample:
    """§3: r1: p1 :- ¬p2,¬p3; r2: p2 :- ¬p1,¬p3; r3: p3 :- ¬p1,¬p2."""

    PROG = "p1 :- not p2, not p3. p2 :- not p1, not p3. p3 :- not p1, not p2."

    def test_component_is_not_a_tie(self):
        """'The component is not a tie ... cycle with three negative arcs.'"""
        from repro.datalog.grounding import ground
        from repro.ground.state import GroundGraphState

        gp = ground(parse_program(self.PROG), Database(), mode="full")
        st = GroundGraphState(gp)
        st.close()
        bottoms = st.bottom_components_live()
        assert len(bottoms) == 1 and not bottoms[0].is_tie

    def test_no_unfounded_set(self):
        """'G+ consists of three disjoint arcs ... no nonempty unfounded set.'"""
        from repro.datalog.grounding import ground
        from repro.ground.state import GroundGraphState

        gp = ground(parse_program(self.PROG), Database(), mode="full")
        st = GroundGraphState(gp)
        st.close()
        assert st.unfounded_atoms() == []

    def test_tie_breaking_assigns_nothing(self):
        """'the well-founded tie-breaking algorithm will not assign a truth
        value to any proposition.'"""
        run = well_founded_tie_breaking(parse_program(self.PROG))
        assert run.model.undefined_count == 3

    def test_three_stable_models_exist(self):
        """'there are three stable models ... one true and two false.'"""
        models = list(enumerate_stable_models(parse_program(self.PROG)))
        assert len(models) == 3
        for m in models:
            assert len(m) == 1

    def test_specific_stable_model(self):
        """'the model with p1=true and p2=p3=false is stable.'"""
        prog = parse_program(self.PROG)
        assert is_stable_model(prog, Database(), {Atom("p1")})


class TestArchetypicalProgram:
    """§6: P(x) :- ¬Q(x); Q(x) :- ¬P(x) has two fixpoints per element."""

    def test_two_fixpoints_per_element(self):
        prog = parse_program("p(X) :- not q(X), d(X). q(X) :- not p(X), d(X).")
        db = parse_database("d(1).")
        models = list(enumerate_fixpoints(prog, db))
        truth_patterns = {
            frozenset(a.predicate for a in m if a.predicate in "pq") for m in models
        }
        assert truth_patterns == {frozenset({"p"}), frozenset({"q"})}

    def test_tie_breaking_finds_each_under_some_choice(self):
        from repro.semantics import enumerate_tie_breaking_models

        prog = parse_program("p(X) :- not q(X), d(X). q(X) :- not p(X), d(X).")
        db = parse_database("d(1).")
        found = set()
        for run in enumerate_tie_breaking_models(prog, db):
            assert run.is_total
            found.add(frozenset(a.predicate for a in run.model.true_set() if a.predicate in "pq"))
        assert found == {frozenset({"p"}), frozenset({"q"})}
