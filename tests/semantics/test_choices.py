"""Unit tests for choice policies and forced orientations."""


from repro.semantics.choices import (
    FewestTrue,
    FirstSideTrue,
    MostTrue,
    RandomChoice,
    SecondSideTrue,
    forced_orientation,
)


class TestForcedOrientation:
    def test_empty_side_zero_forced_true(self):
        assert forced_orientation(0, 5) == 0

    def test_empty_side_one_forced_true(self):
        assert forced_orientation(5, 0) == 1

    def test_both_inhabited_free(self):
        assert forced_orientation(3, 4) is None


class TestDeterministicPolicies:
    def test_first_side_true_prefers_smaller_ids(self):
        assert FirstSideTrue().choose_true_side([5, 9], [2, 7]) == 1
        assert FirstSideTrue().choose_true_side([1], [2]) == 0

    def test_second_side_is_the_mirror(self):
        for sides in ([[5, 9], [2, 7]], [[1], [2]], [[3], [4, 0]]):
            first = FirstSideTrue().choose_true_side(*sides)
            second = SecondSideTrue().choose_true_side(*sides)
            assert first != second

    def test_fewest_true(self):
        assert FewestTrue().choose_true_side([1, 2, 3], [4]) == 1
        assert FewestTrue().choose_true_side([1], [2, 3]) == 0

    def test_most_true(self):
        assert MostTrue().choose_true_side([1, 2, 3], [4]) == 0

    def test_size_ties_fall_back_to_first_side(self):
        assert FewestTrue().choose_true_side([3], [1]) == FirstSideTrue().choose_true_side([3], [1])


class TestRandomChoice:
    def test_seed_reproducible(self):
        sequence_a = [RandomChoice(7).choose_true_side([1], [2]) for _ in range(5)]
        sequence_b = [RandomChoice(7).choose_true_side([1], [2]) for _ in range(5)]
        assert sequence_a == sequence_b

    def test_stateful_within_instance(self):
        policy = RandomChoice(3)
        draws = {policy.choose_true_side([1], [2]) for _ in range(50)}
        assert draws == {0, 1}  # both orientations eventually drawn

    def test_policies_change_models(self):
        from repro.datalog.parser import parse_program
        from repro.semantics.tie_breaking import well_founded_tie_breaking

        program = parse_program("p :- not q. q :- not p.")
        first = well_founded_tie_breaking(program, policy=FirstSideTrue(), grounding="full")
        second = well_founded_tie_breaking(program, policy=SecondSideTrue(), grounding="full")
        assert first.model.true_set() != second.model.true_set()


class TestSelfDescription:
    """Policies describe themselves so runs are reproducible from output."""

    def test_deterministic_policy_reprs(self):
        assert repr(FirstSideTrue()) == "FirstSideTrue()"
        assert repr(SecondSideTrue()) == "SecondSideTrue()"
        assert repr(FewestTrue()) == "FewestTrue()"
        assert repr(MostTrue()) == "MostTrue()"

    def test_random_choice_records_explicit_seed(self):
        policy = RandomChoice(42)
        assert policy.seed == 42
        assert repr(policy) == "RandomChoice(seed=42)"

    def test_unseeded_random_choice_is_replayable_from_its_repr(self):
        policy = RandomChoice()
        assert isinstance(policy.seed, int)
        replay = RandomChoice(policy.seed)
        draws = [policy.choose_true_side([1], [2]) for _ in range(20)]
        assert draws == [replay.choose_true_side([1], [2]) for _ in range(20)]

    def test_run_metadata_reports_policy(self):
        from repro.api import Engine

        engine = Engine("p :- not q. q :- not p.")
        solution = engine.solve("tie_breaking", policy=RandomChoice(9), grounding="full")
        assert solution.policy == "RandomChoice(seed=9)"
        assert solution.run.policy == "RandomChoice(seed=9)"
        default = engine.solve("tie_breaking", grounding="full")
        assert default.policy == "FirstSideTrue()"
