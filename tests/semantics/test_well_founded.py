"""Tests for the well-founded interpreter (Algorithm Well-Founded, §2)."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.semantics.well_founded import well_founded_model


class TestWellFoundedBasics:
    def test_positive_program_least_model(self):
        prog = parse_program("tc(X,Y) :- e(X,Y). tc(X,Z) :- tc(X,Y), e(Y,Z).")
        db = parse_database("e(1,2). e(2,3).")
        run = well_founded_model(prog, db)
        assert run.is_total
        values = {tuple(c.value for c in row) for row in run.model.true_rows("tc")}
        assert values == {(1, 2), (2, 3), (1, 3)}

    def test_unfounded_loop_false(self):
        run = well_founded_model(parse_program("p :- p."))
        assert run.model.value(Atom("p")) is False
        assert run.is_total

    def test_negative_cycle_undefined(self):
        run = well_founded_model(parse_program("p :- not q. q :- not p."))
        assert not run.is_total
        assert run.model.value(Atom("p")) is None
        assert run.model.value(Atom("q")) is None

    def test_odd_loop_undefined(self):
        run = well_founded_model(parse_program("p :- not p."))
        assert run.model.value(Atom("p")) is None

    def test_win_move_game(self):
        """Standard win-move: 1->2->3 chain; 1 wins, 2 wins?, 3 loses.

        win(X) :- move(X,Y), ¬win(Y): 3 has no move (loses), 2 moves to 3
        (wins), 1 moves to 2 (2 wins, so this move fails) — 1 loses.
        """
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 3).")
        run = well_founded_model(prog, db)
        assert run.is_total
        assert run.model.value(atom("win", 2)) is True
        assert run.model.value(atom("win", 1)) is False
        assert run.model.value(atom("win", 3)) is False

    def test_win_move_draw_cycle_undefined(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 1).")
        run = well_founded_model(prog, db)
        assert not run.is_total
        assert run.model.value(atom("win", 1)) is None
        assert run.model.value(atom("win", 2)) is None

    def test_paper_program_1_total(self):
        """Program (1): P(a) :- ¬P(x), E(b) is total though unstratifiable."""
        prog = parse_program("p(a) :- not p(X), e(b).")
        db = parse_database("e(b).")
        run = well_founded_model(prog, db)
        assert run.is_total
        assert run.model.value(atom("p", "a")) is True

    def test_paper_program_2_variant_partial(self):
        """Program (2): P(x,y) :- ¬P(y,y), E(x) has no fixpoint when E nonempty;
        the well-founded model must be partial."""
        prog = parse_program("p(X, Y) :- not p(Y, Y), e(X).")
        db = parse_database("e(a).")
        run = well_founded_model(prog, db, grounding="full")
        assert not run.is_total

    def test_uniform_initial_idb_facts(self):
        """Uniform case: IDB atoms in Δ are true even without derivation."""
        prog = parse_program("p :- q. q :- p.")
        db = parse_database("p.")
        run = well_founded_model(prog, db)
        assert run.model.value(Atom("p")) is True
        assert run.model.value(Atom("q")) is True

    def test_empty_program(self):
        run = well_founded_model(parse_program("r."), Database())
        assert run.is_total and run.model.value(Atom("r")) is True

    def test_iterations_counted(self):
        # Tower: each unfounded-set round removes one layer? At least >= 1.
        prog = parse_program("a :- a. b :- b, not a. c :- c, not b.")
        run = well_founded_model(prog, grounding="full")
        assert run.iterations >= 1
        assert run.is_total


class TestGroundingEquivalence:
    """WF(relevant) must equal WF(full) — the soundness claim of DESIGN.md."""

    CASES = [
        ("win(X) :- move(X, Y), not win(Y).", "move(1,2). move(2,3). move(3,1)."),
        ("p(X, Y) :- not p(Y, Y), e(X).", "e(a). e(b)."),
        ("p(a) :- not p(X), e(b).", "e(b)."),
        ("a(X) :- e(X), not b(X). b(X) :- e(X), not a(X).", "e(1). e(2)."),
        ("r(X) :- s(X). s(X) :- r(X).", "t(1)."),
    ]

    @pytest.mark.parametrize("source,db_source", CASES)
    def test_full_vs_relevant(self, source, db_source):
        prog = parse_program(source)
        db = parse_database(db_source)
        full = well_founded_model(prog, db, grounding="full")
        relevant = well_founded_model(prog, db, grounding="relevant")
        assert full.model.agrees_with(relevant.model)
