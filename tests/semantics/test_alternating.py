"""Dedicated tests for the alternating-fixpoint implementation."""


from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.semantics.alternating import (
    alternating_fixpoint_model,
    gamma_operator,
    is_stable_via_gamma,
)
from repro.semantics.well_founded import well_founded_model


class TestGammaOperator:
    def test_gamma_of_empty_is_overestimate(self):
        prog = parse_program("p :- not q. q :- not p.")
        gp = ground(prog, Database(), mode="full")
        gamma = gamma_operator(gp)
        over = gamma(set())
        # with no negative information, both rules fire
        assert len(over) == 2

    def test_gamma_is_antimonotone(self):
        prog = parse_program("p :- not q. q :- not p. r :- p.")
        gp = ground(prog, Database(), mode="full")
        gamma = gamma_operator(gp)
        q = gp.atoms.get(Atom("q"))
        small = gamma(set())
        large = gamma({q})
        # adding q to the input can only remove conclusions
        assert large <= small

    def test_gamma_includes_delta_always(self):
        prog = parse_program("p :- not q.")
        db = parse_database("p. e.")
        gp = ground(prog, db, mode="full")
        gamma = gamma_operator(gp)
        p = gp.atoms.get(Atom("p"))
        assert p in gamma(set())
        assert p in gamma(set(range(gp.atom_count)))

    def test_stable_iff_gamma_fixpoint(self):
        prog = parse_program("p :- not q. q :- not p.")
        gp = ground(prog, Database(), mode="full")
        gamma = gamma_operator(gp)
        p, q = gp.atoms.get(Atom("p")), gp.atoms.get(Atom("q"))
        assert gamma({p}) == {p}
        assert gamma({q}) == {q}
        assert gamma(set()) != set()
        assert gamma({p, q}) != {p, q}


class TestAlternatingModel:
    def test_three_zones(self):
        model = alternating_fixpoint_model(
            parse_program("t :- not f. f :- u. p :- not q. q :- not p.")
        )
        assert model.value(Atom("t")) is True
        assert model.value(Atom("f")) is False
        assert model.value(Atom("u")) is False
        assert model.value(Atom("p")) is None

    def test_matches_wf_on_counter_machine(self):
        from repro.constructions.counter_machines import alternating_machine
        from repro.constructions.theorem6 import machine_to_program, natural_database

        prog = machine_to_program(alternating_machine())
        db = natural_database(3)
        wf = well_founded_model(prog, db)
        alt = alternating_fixpoint_model(prog, db)
        assert wf.model.agrees_with(alt)

    def test_uniform_case_delta_idb(self):
        prog = parse_program("p :- q.")
        db = parse_database("p.")
        model = alternating_fixpoint_model(prog, db)
        assert model.value(Atom("p")) is True
        assert model.value(Atom("q")) is False


class TestStableViaGamma:
    def test_rejects_unmaterialized_true_atoms(self):
        prog = parse_program("p :- p.")
        # {p} is a fixpoint but p is outside U*; edb grounding does
        # materialize it (no EDB literals to violate), so this checks the
        # genuine non-stability, not the materialization escape hatch.
        assert not is_stable_via_gamma(prog, Database(), frozenset({Atom("p")}))

    def test_requires_delta_in_candidate(self):
        prog = parse_program("p :- not q.")
        db = parse_database("e.")
        assert not is_stable_via_gamma(prog, db, frozenset({Atom("p")}))
        assert is_stable_via_gamma(prog, db, frozenset({Atom("p"), Atom("e")}))

    def test_predicate_case(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2).")
        candidate = frozenset({atom("move", 1, 2), atom("win", 1)})
        assert is_stable_via_gamma(prog, db, candidate)
        wrong = frozenset({atom("move", 1, 2), atom("win", 2)})
        assert not is_stable_via_gamma(prog, db, wrong)
