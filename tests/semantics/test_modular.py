"""Tests for modular (split) well-founded evaluation."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.semantics.modular import modular_well_founded_model
from repro.semantics.well_founded import well_founded_model

from tests.properties.strategies import propositional_cases, small_predicate_cases


def assert_matches_monolithic(program, db):
    modular = modular_well_founded_model(program, db, grounding="full")
    monolithic = well_founded_model(program, db, grounding="full").model
    for a in monolithic.true_atoms():
        assert modular.value(a) is True, str(a)
    for a in monolithic.false_atoms():
        assert modular.value(a) is False, str(a)
    for a in monolithic.undefined_atoms():
        assert modular.value(a) is None, str(a)


class TestModularEquivalence:
    CASES = [
        ("a :- not b. b :- not a. safe :- e, not a.", "e."),
        ("p :- p. q :- not p.", ""),
        ("l0 :- e. l1 :- not l0. l2 :- not l1.", "e."),
        ("win(X) :- move(X, Y), not win(Y).", "move(1,2). move(2,1). move(1,3)."),
        ("a :- b. b :- a. c :- not a.", ""),
        ("x :- not y. y :- not x. z :- x, y.", ""),
    ]

    @pytest.mark.parametrize("source,db_source", CASES)
    def test_corpus(self, source, db_source):
        program = parse_program(source)
        db = parse_database(db_source) if db_source else Database()
        assert_matches_monolithic(program, db)

    def test_undefinedness_propagates_through_gadgets(self):
        program = parse_program("a :- not b. b :- not a. down :- a, e.")
        db = parse_database("e.")
        result = modular_well_founded_model(program, db)
        assert result.value(Atom("down")) is None

    def test_definite_layers_stay_definite(self):
        program = parse_program("base :- e. mid :- base, not off. top :- mid.")
        db = parse_database("e.")
        result = modular_well_founded_model(program, db)
        assert result.is_total
        assert result.value(Atom("top")) is True

    def test_component_count(self):
        program = parse_program("a :- b. b :- a. c :- not a. d :- c.")
        result = modular_well_founded_model(program, Database())
        # components: {a, b}, {c}, {d} (EDB-only components skipped)
        assert result.component_count == 3

    def test_value_resolves_edb(self):
        program = parse_program("p(X) :- e(X).")
        db = parse_database("e(1).")
        result = modular_well_founded_model(program, db)
        assert result.value(atom("e", 1)) is True
        assert result.value(atom("e", 2)) is False


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=propositional_cases())
def test_modular_equals_monolithic_random(case):
    program, db = case
    assert_matches_monolithic(program, db)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=small_predicate_cases())
def test_modular_equals_monolithic_predicates(case):
    program, db = case
    assert_matches_monolithic(program, db)
