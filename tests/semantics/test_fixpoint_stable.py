"""Tests for fixpoint checking/enumeration and both stable-model checkers."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.errors import SemanticsError
from repro.semantics.completion import (
    count_fixpoints,
    enumerate_fixpoints,
    find_fixpoint,
    has_fixpoint,
)
from repro.semantics.fixpoint import check_fixpoint, is_fixpoint
from repro.semantics.stable import (
    enumerate_stable_models,
    has_stable_model,
    is_stable_model,
    reduct_least_model,
)


class TestCheckFixpoint:
    def test_positive_least_model_is_fixpoint(self):
        prog = parse_program("p(X) :- e(X).")
        db = parse_database("e(1).")
        assert is_fixpoint(prog, db, {atom("e", 1), atom("p", 1)})

    def test_nonminimal_supported_loop_is_fixpoint(self):
        """p :- p: both {} and {p} are fixpoints (supportedness, not minimality)."""
        prog = parse_program("p :- p.")
        assert is_fixpoint(prog, Database(), set())
        assert is_fixpoint(prog, Database(), {Atom("p")})

    def test_unsupported_atom_rejected(self):
        prog = parse_program("p :- q.")
        violation = check_fixpoint(prog, Database(), {Atom("p")})
        assert violation.kind == "unsupported" and violation.atom == Atom("p")

    def test_unsatisfied_rule_rejected(self):
        prog = parse_program("p :- not q.")
        violation = check_fixpoint(prog, Database(), set())
        assert violation.kind == "unsatisfied-rule"
        assert violation.atom == Atom("p")

    def test_edb_mismatch_extra_true(self):
        prog = parse_program("p(X) :- e(X).")
        violation = check_fixpoint(prog, Database(), {atom("e", 1), atom("p", 1)})
        assert violation.kind == "edb-mismatch"

    def test_edb_mismatch_missing_delta(self):
        prog = parse_program("p(X) :- e(X).")
        db = parse_database("e(1).")
        violation = check_fixpoint(prog, db, set())
        assert violation.kind == "edb-mismatch"

    def test_delta_idb_atoms_self_supported(self):
        """Uniform case: Δ's IDB atoms are true without rule support."""
        prog = parse_program("p :- q.")
        db = parse_database("p.")
        assert is_fixpoint(prog, db, {Atom("p"), Atom("q")}) is False  # q unsupported
        assert is_fixpoint(prog, db, {Atom("p")})

    def test_negative_literal_with_unbound_variable(self):
        """p(a) :- ¬p(X), e(b): support needs SOME X with p(X) false."""
        prog = parse_program("p(a) :- not p(X), e(b).")
        db = parse_database("e(b).")
        # p(a) true, p(b) false: supported via X=b.  Fixpoint.
        assert is_fixpoint(prog, db, {atom("e", "b"), atom("p", "a")})

    def test_non_total_interpretation_rejected(self):
        from repro.datalog.grounding import ground
        from repro.ground.model import Interpretation, UNDEF

        prog = parse_program("p :- not p.")
        gp = ground(prog, Database(), mode="full")
        partial = Interpretation(gp, (UNDEF,))
        with pytest.raises(SemanticsError):
            is_fixpoint(prog, Database(), partial)


class TestEnumerateFixpoints:
    def test_no_fixpoint_odd_loop(self):
        assert not has_fixpoint(parse_program("p :- not p."))
        assert find_fixpoint(parse_program("p :- not p.")) is None

    def test_count_on_independent_choices(self):
        prog = parse_program("a :- not b. b :- not a. c :- not d. d :- not c.")
        assert count_fixpoints(prog) == 4

    def test_positive_loop_two_fixpoints(self):
        assert count_fixpoints(parse_program("p :- p.")) == 2

    def test_every_enumerated_model_verifies(self):
        prog = parse_program(
            "p :- not q. q :- not p. r :- p, q. s :- s. t :- not r, p."
        )
        models = list(enumerate_fixpoints(prog))
        assert models
        for m in models:
            assert is_fixpoint(prog, Database(), m), sorted(str(a) for a in m)

    def test_predicate_case_with_database(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 1).")
        models = list(enumerate_fixpoints(prog, db))
        # Draw cycle: win(1) xor win(2), two fixpoints.
        assert len(models) == 2
        for m in models:
            assert is_fixpoint(prog, db, m)

    def test_conflicting_requirements_unsat(self):
        prog = parse_program("p :- not p, e.")
        db = parse_database("e.")
        assert not has_fixpoint(prog, db)

    def test_delta_makes_it_sat(self):
        """Same program, but Δ contains p: p is supported by Δ, rule is vacuous."""
        prog = parse_program("p :- not p, e.")
        db = parse_database("e. p.")
        assert has_fixpoint(prog, db)


class TestStableCheckers:
    def test_methods_agree_on_examples(self):
        cases = [
            ("p :- not q. q :- not p.", "", [{"p"}, {"q"}, set(), {"p", "q"}]),
            ("p :- p.", "", [set(), {"p"}]),
            ("p :- p, not q. q :- q, not p.", "", [set(), {"p"}]),
            ("a :- not b. b :- not a. c :- a.", "", [{"a", "c"}, {"b"}, {"a"}]),
        ]
        for source, db_source, candidates in cases:
            prog = parse_program(source)
            db = parse_database(db_source) if db_source else Database()
            for names in candidates:
                cand = {Atom(n) for n in names}
                via_reduct = is_stable_model(prog, db, cand, method="reduct")
                via_close = is_stable_model(prog, db, cand, method="close", grounding="full")
                assert via_reduct == via_close, (source, names)

    def test_stable_implies_fixpoint(self):
        prog = parse_program("p :- p.")
        # {p} is a fixpoint but not stable (not founded).
        assert is_fixpoint(prog, Database(), {Atom("p")})
        assert not is_stable_model(prog, Database(), {Atom("p")})

    def test_reduct_least_model(self):
        prog = parse_program("p :- not q. q :- not p.")
        lm = reduct_least_model(prog, Database(), frozenset({Atom("p")}))
        assert lm == frozenset({Atom("p")})

    def test_enumerate_stable_subset_of_fixpoints(self):
        prog = parse_program("p :- not q. q :- not p. r :- r.")
        fixpoints = set(enumerate_fixpoints(prog))
        stables = set(enumerate_stable_models(prog))
        assert stables <= fixpoints
        assert len(fixpoints) == 4  # (p xor q) x (r or not)
        assert len(stables) == 2  # r must be false

    def test_has_stable_model(self):
        assert has_stable_model(parse_program("p :- not q. q :- not p."))
        assert not has_stable_model(parse_program("p :- not p."))

    def test_stable_with_database(self):
        prog = parse_program("win(X) :- move(X, Y), not win(Y).")
        db = parse_database("move(1, 2). move(2, 1).")
        models = list(enumerate_stable_models(prog, db))
        assert len(models) == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            is_stable_model(parse_program("p."), Database(), {Atom("p")}, method="nope")

    def test_uniform_delta_idb_supported(self):
        """IDB atoms of Δ count as supported in stable models too."""
        prog = parse_program("p :- q.")
        db = parse_database("p.")
        assert is_stable_model(prog, db, {Atom("p")})
