"""Tests for stratified evaluation, the perfect model, and Fitting semantics."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_database, parse_program
from repro.errors import SemanticsError
from repro.semantics.fitting import fitting_model
from repro.semantics.perfect import is_locally_stratified, perfect_model
from repro.semantics.stratified import is_stratified, stratification, stratified_model
from repro.semantics.tie_breaking import pure_tie_breaking, well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model


class TestStratification:
    def test_positive_program_is_stratified(self):
        assert is_stratified(parse_program("tc(X,Y) :- e(X,Y). tc(X,Z) :- tc(X,Y), e(Y,Z)."))

    def test_negation_across_levels_is_stratified(self):
        prog = parse_program(
            "reach(Y) :- reach(X), edge(X, Y). reach(X) :- start(X). "
            "unreached(X) :- node(X), not reach(X)."
        )
        strat = stratification(prog)
        assert strat is not None
        assert strat.level["reach"] == 0
        assert strat.level["unreached"] == 1

    def test_negative_cycle_not_stratified(self):
        assert not is_stratified(parse_program("p :- not q. q :- not p."))

    def test_negative_self_loop_not_stratified(self):
        assert not is_stratified(parse_program("p :- not p."))

    def test_negation_in_positive_cycle_not_stratified(self):
        assert not is_stratified(parse_program("p :- q. q :- not p."))

    def test_paper_program_1_not_stratified(self):
        """'Program (1) ... is total though unstratifiable' (well, its graph
        has a negative self-loop)."""
        assert not is_stratified(parse_program("p(a) :- not p(X), e(b)."))

    def test_deep_tower_levels(self):
        prog = parse_program(
            "l1 :- not l0. l2 :- not l1. l3 :- not l2. l0 :- e."
        )
        strat = stratification(prog)
        assert [strat.level[f"l{i}"] for i in range(4)] == [0, 1, 2, 3]


class TestStratifiedModel:
    def test_matches_well_founded(self):
        prog = parse_program(
            "reach(Y) :- reach(X), edge(X, Y). reach(X) :- start(X). "
            "unreached(X) :- node(X), not reach(X)."
        )
        db = parse_database(
            "start(1). edge(1, 2). edge(3, 4). node(1). node(2). node(3). node(4)."
        )
        sm = stratified_model(prog, db)
        wf = well_founded_model(prog, db)
        assert wf.is_total
        assert sm == wf.model.true_set()

    def test_rejects_unstratified(self):
        with pytest.raises(SemanticsError):
            stratified_model(parse_program("p :- not p."), Database())

    def test_two_strata_negation(self):
        prog = parse_program("good(X) :- item(X), not bad(X). bad(X) :- flag(X).")
        db = parse_database("item(1). item(2). flag(2).")
        sm = stratified_model(prog, db)
        names = {str(a) for a in sm if a.predicate in ("good", "bad")}
        assert names == {"good(1)", "bad(2)"}

    def test_uniform_initial_idb_seeds(self):
        prog = parse_program("p(X) :- q(X).")
        db = parse_database("q(1). p(7).")
        sm = stratified_model(prog, db)
        assert atom("p", 7) in sm and atom("p", 1) in sm


class TestPerfectModel:
    def test_locally_stratified_ground_chain(self):
        """A ground program with negation across levels: perfect model exists."""
        prog = parse_program("a :- not b. b :- c. c.")
        assert is_locally_stratified(prog)
        pm = perfect_model(prog)
        assert pm.value(Atom("c")) is True
        assert pm.value(Atom("b")) is True
        assert pm.value(Atom("a")) is False

    def test_negative_ground_cycle_not_locally_stratified(self):
        prog = parse_program("p :- not q. q :- not p.")
        assert not is_locally_stratified(prog)
        with pytest.raises(SemanticsError):
            perfect_model(prog)

    def test_relevant_grounding_recovers_even_odd(self):
        """even/odd over a succ chain is locally stratified once irrelevant
        instances are pruned (full instantiation has spurious cycles)."""
        prog = parse_program("e(X) :- num(X), not o(X). o(X) :- s(Y, X), e(Y).")
        db = parse_database("num(0). num(1). num(2). s(0, 1). s(1, 2).")
        assert not is_locally_stratified(prog, db, grounding="full")
        assert is_locally_stratified(prog, db, grounding="relevant")
        pm = perfect_model(prog, db, grounding="relevant")
        trues = {str(a) for a in pm.true_set() if a.predicate in ("e", "o")}
        assert trues == {"e(0)", "o(1)", "e(2)"}

    def test_tie_breaking_computes_perfect_model(self):
        """§3: 'The tie-breaking algorithm ... will compute the perfect model.'"""
        prog = parse_program("a :- not b. b :- c. c. d :- d. z :- not d.")
        pm = perfect_model(prog)
        for run in (
            pure_tie_breaking(prog),
            well_founded_tie_breaking(prog, grounding="full"),
        ):
            assert run.is_total
            assert run.model.true_set() == pm.true_set()

    def test_positive_loop_minimized(self):
        pm = perfect_model(parse_program("p :- p."))
        assert pm.value(Atom("p")) is False


class TestFitting:
    def test_loop_undefined_under_fitting_false_under_wf(self):
        prog = parse_program("p :- p.")
        fm = fitting_model(prog)
        wf = well_founded_model(prog, grounding="full")
        assert fm.value(Atom("p")) is None
        assert wf.model.value(Atom("p")) is False

    def test_wf_extends_fitting(self):
        progs = [
            "p :- p. q :- not p. r :- not q.",
            "a :- not b. b :- not a. c :- a, b.",
            "x :- y, not z. y :- x. z :- e.",
        ]
        for source in progs:
            prog = parse_program(source)
            fm = fitting_model(prog)
            wf = well_founded_model(prog, grounding="full").model
            for a in fm.true_atoms():
                assert wf.value(a) is True, (source, str(a))
            for a in fm.false_atoms():
                assert wf.value(a) is False, (source, str(a))

    def test_definite_values_propagate(self):
        prog = parse_program("p :- not q. q :- r. r :- e.")
        db = parse_database("e.")
        fm = fitting_model(prog, db)
        assert fm.value(Atom("r")) is True
        assert fm.value(Atom("q")) is True
        assert fm.value(Atom("p")) is False

    def test_requires_full_grounding(self):
        from repro.datalog.grounding import ground

        prog = parse_program("p :- p.")
        gp = ground(prog, Database(), mode="relevant")
        with pytest.raises(SemanticsError):
            fitting_model(prog, ground_program=gp)
