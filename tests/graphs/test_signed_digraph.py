"""Unit tests for the SignedDigraph container and condensation helpers."""

import pytest

from repro.graphs.condensation import topological_component_order
from repro.graphs.scc import strongly_connected_components
from repro.graphs.signed_digraph import SignedDigraph, SignedEdge


class TestSignedDigraph:
    def test_nodes_keep_insertion_order(self):
        g = SignedDigraph()
        for node in ["c", "a", "b"]:
            g.add_node(node)
        assert g.nodes == ("c", "a", "b")
        assert g.index_of("a") == 1 and g.label_of(2) == "b"

    def test_duplicate_edges_collapse(self):
        g = SignedDigraph()
        g.add_edge("x", "y", positive=True)
        g.add_edge("x", "y", positive=True)
        assert g.edge_count == 1

    def test_parallel_opposite_signs_kept(self):
        g = SignedDigraph()
        g.add_edge("x", "y", positive=True)
        g.add_edge("x", "y", positive=False)
        assert g.edge_count == 2
        signs = {s for _, s in g.successors("x")}
        assert signs == {True, False}

    def test_successors_predecessors(self):
        g = SignedDigraph.from_edges([("a", "b", True), ("c", "b", False)])
        assert set(g.predecessors("b")) == {("a", True), ("c", False)}
        assert list(g.successors("a")) == [("b", True)]

    def test_contains(self):
        g = SignedDigraph()
        g.add_node("n")
        assert "n" in g and "m" not in g

    def test_has_negative_edge(self):
        g = SignedDigraph.from_edges([("a", "b", True)])
        assert not g.has_negative_edge()
        g.add_edge("b", "a", positive=False)
        assert g.has_negative_edge()

    def test_signed_edge_str(self):
        assert "→" in str(SignedEdge("a", "b", True))
        assert "⊸" in str(SignedEdge("a", "b", False))


class TestTopologicalOrderValidation:
    def test_valid_order_accepted(self):
        g = SignedDigraph.from_edges([("a", "b", True), ("b", "c", True)])
        succ = g.successor_lists()
        comps = strongly_connected_components(
            g.node_count, lambda u: (v for v, _ in succ[u])
        )
        order = topological_component_order(
            comps, lambda u: (v for v, _ in succ[u]), g.node_count
        )
        assert order == list(range(len(comps)))

    def test_corrupted_order_rejected(self):
        g = SignedDigraph.from_edges([("a", "b", True)])
        succ = g.successor_lists()
        comps = strongly_connected_components(
            g.node_count, lambda u: (v for v, _ in succ[u])
        )
        reversed_comps = list(reversed(comps))
        with pytest.raises(AssertionError):
            topological_component_order(
                reversed_comps, lambda u: (v for v, _ in succ[u]), g.node_count
            )
