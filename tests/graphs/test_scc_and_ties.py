"""Tests for SCCs, tie analysis (Lemma 1), and odd-cycle extraction."""

import pytest

from repro.errors import NotATieError
from repro.graphs.condensation import bottom_components, component_ids
from repro.graphs.odd_cycles import find_odd_cycle, has_odd_cycle, is_cycle_balanced
from repro.graphs.scc import scc_of_signed_digraph, strongly_connected_components
from repro.graphs.signed_digraph import SignedDigraph
from repro.graphs.ties import analyze_component, extract_simple_odd_cycle


def graph_of(*edges):
    """Helper: edges are (u, v, sign) with sign '+'/'-'."""
    return SignedDigraph.from_edges((u, v, s == "+") for u, v, s in edges)


class TestSCC:
    def test_two_cycles_and_bridge(self):
        g = graph_of(("a", "b", "+"), ("b", "a", "+"), ("b", "c", "+"),
                     ("c", "d", "+"), ("d", "c", "+"))
        comps = [sorted(c) for c in scc_of_signed_digraph(g)]
        assert sorted(map(tuple, comps)) == [("a", "b"), ("c", "d")]

    def test_reverse_topological_order(self):
        g = graph_of(("a", "b", "+"), ("b", "c", "+"))
        comps = scc_of_signed_digraph(g)
        # edge a->b means component of b precedes component of a
        order = {c[0]: i for i, c in enumerate(comps)}
        assert order["c"] < order["b"] < order["a"]

    def test_long_chain_no_recursion_error(self):
        n = 50_000
        succ = [[i + 1] if i + 1 < n else [] for i in range(n)]
        comps = strongly_connected_components(n, lambda u: succ[u])
        assert len(comps) == n

    def test_big_cycle_single_component(self):
        n = 10_000
        succ = [[(i + 1) % n] for i in range(n)]
        comps = strongly_connected_components(n, lambda u: succ[u])
        assert len(comps) == 1 and len(comps[0]) == n

    def test_self_loop(self):
        g = graph_of(("a", "a", "+"))
        assert scc_of_signed_digraph(g) == [["a"]]


class TestTieAnalysis:
    def run(self, *edges):
        g = graph_of(*edges)
        succ = g.successor_lists()
        comp = list(range(g.node_count))
        return g, analyze_component(comp, lambda u: succ[u])

    def test_two_node_negative_cycle_is_tie(self):
        """p <-> q with both edges negative: the archetypal tie."""
        g, analysis = self.run(("p", "q", "-"), ("q", "p", "-"))
        assert analysis.is_tie
        sides = analysis.sides
        assert sides[g.index_of("p")] != sides[g.index_of("q")]

    def test_positive_cycle_is_tie_same_side(self):
        g, analysis = self.run(("p", "q", "+"), ("q", "p", "+"))
        assert analysis.is_tie
        assert analysis.sides[g.index_of("p")] == analysis.sides[g.index_of("q")]

    def test_negative_self_loop_not_tie(self):
        g, analysis = self.run(("p", "p", "-"))
        assert not analysis.is_tie
        assert analysis.odd_cycle == ((g.index_of("p"), g.index_of("p"), False),)

    def test_one_negative_one_positive_cycle_not_tie(self):
        _, analysis = self.run(("p", "q", "-"), ("q", "p", "+"))
        assert not analysis.is_tie
        negatives = sum(1 for _, _, s in analysis.odd_cycle if not s)
        assert negatives % 2 == 1

    def test_triangle_three_negatives_not_tie(self):
        """The paper's 3-rule example component contains a 3-negative cycle."""
        _, analysis = self.run(("a", "b", "-"), ("b", "c", "-"), ("c", "a", "-"))
        assert not analysis.is_tie
        assert len(analysis.odd_cycle) == 3

    def test_parallel_edges_of_both_signs_not_tie(self):
        _, analysis = self.run(("p", "q", "+"), ("p", "q", "-"), ("q", "p", "+"))
        assert not analysis.is_tie

    def test_four_cycle_two_negatives_is_tie(self):
        g, analysis = self.run(("a", "b", "-"), ("b", "c", "+"), ("c", "d", "-"), ("d", "a", "+"))
        assert analysis.is_tie
        sides = analysis.sides
        k = {n for n, s in sides.items() if s == sides[g.index_of("a")]}
        assert {g.label_of(i) for i in k} == {"a", "d"}

    def test_side_nodes_raises_without_partition(self):
        _, analysis = self.run(("p", "p", "-"))
        with pytest.raises(NotATieError):
            analysis.side_nodes(0)

    def test_side_nodes_sorted_regardless_of_discovery_order(self):
        """``side_nodes`` returns ascending node ids, not insertion order.

        Regression: the sides dict is keyed in spanning-walk discovery
        order, which on this 4-cycle visits d (id 3) before c (id 2);
        the per-side views must still come back sorted.
        """
        g, analysis = self.run(
            ("a", "b", "-"), ("b", "c", "+"), ("c", "d", "-"), ("d", "a", "+")
        )
        for side in (0, 1):
            nodes = analysis.side_nodes(side)
            assert nodes == sorted(nodes)
        assert sorted(analysis.side_nodes(0) + analysis.side_nodes(1)) == list(
            range(g.node_count)
        )

    def test_singleton_component_trivial_tie(self):
        g = SignedDigraph()
        g.add_node("solo")
        analysis = analyze_component([0], lambda u: [])
        assert analysis.is_tie and analysis.sides == {0: 0}

    def test_odd_cycle_is_simple_and_closed(self):
        g, analysis = self.run(
            ("a", "b", "+"), ("b", "c", "-"), ("c", "a", "+"),
            ("c", "d", "+"), ("d", "b", "+"),
        )
        assert not analysis.is_tie
        cycle = analysis.odd_cycle
        # closed
        assert cycle[-1][1] == cycle[0][0]
        for (u, v, _), (u2, _, _2) in zip(cycle, cycle[1:]):
            assert v == u2
        # simple: sources all distinct
        sources = [u for u, _, _ in cycle]
        assert len(set(sources)) == len(sources)


class TestExtractSimpleOddCycle:
    def test_already_simple(self):
        walk = [(0, 1, False), (1, 0, True)]
        assert extract_simple_odd_cycle(walk) == walk

    def test_splices_even_subcycle(self):
        # walk: 0 -> 1 -> 2 -> 1 -> 0 where 1->2->1 is even, outer is odd
        walk = [(0, 1, False), (1, 2, True), (2, 1, True), (1, 0, True)]
        cycle = extract_simple_odd_cycle(walk)
        assert sum(1 for _, _, s in cycle if not s) % 2 == 1
        sources = [u for u, _, _ in cycle]
        assert len(set(sources)) == len(sources)

    def test_inner_odd_subcycle_returned(self):
        # 1 -> 2 -> 1 has one negative: odd inner cycle
        walk = [(0, 1, True), (1, 2, False), (2, 1, True), (1, 0, False)]
        cycle = extract_simple_odd_cycle(walk)
        assert sum(1 for _, _, s in cycle if not s) % 2 == 1

    def test_empty_walk_rejected(self):
        with pytest.raises(ValueError):
            extract_simple_odd_cycle([])


class TestWholeGraphOddCycles:
    def test_balanced_graph(self):
        g = graph_of(("p", "q", "-"), ("q", "p", "-"), ("q", "r", "-"))
        assert is_cycle_balanced(g)
        assert find_odd_cycle(g) is None

    def test_odd_cycle_found_in_deep_component(self):
        g = graph_of(
            ("a", "b", "+"), ("b", "a", "+"),   # tie component
            ("b", "x", "+"),
            ("x", "y", "-"), ("y", "x", "+"),   # odd component
        )
        assert has_odd_cycle(g)
        cycle = find_odd_cycle(g)
        labels = {e.source for e in cycle}
        assert labels == {"x", "y"}

    def test_acyclic_graph_balanced(self):
        g = graph_of(("a", "b", "-"), ("b", "c", "-"), ("a", "c", "-"))
        assert is_cycle_balanced(g)


class TestCondensation:
    def test_bottom_components(self):
        # a <-> b feeding c <-> d : bottom is {c, d}? edges point a->...->c,
        # so component of (c,d) has incoming: NOT bottom; (a,b) is bottom.
        g = graph_of(("a", "b", "+"), ("b", "a", "+"), ("b", "c", "+"),
                     ("c", "d", "+"), ("d", "c", "+"))
        succ = g.successor_lists()
        comps = strongly_connected_components(g.node_count, lambda u: (v for v, _ in succ[u]))
        bottoms = bottom_components(comps, lambda u: (v for v, _ in succ[u]), g.node_count)
        bottom_labels = {g.label_of(i) for b in bottoms for i in comps[b]}
        assert bottom_labels == {"a", "b"}

    def test_component_ids_default(self):
        ids = component_ids(4, [[0, 1]])
        assert ids == [0, 0, -1, -1]
