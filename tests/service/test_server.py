"""The asyncio serving tier: admission, sessions, timeouts, drain."""

import asyncio
import io
import json
import os
import signal

import pytest

from repro import Engine
from repro.cli import main
from repro.service import ReproServer, run_server, solve_one
from repro.service.batch import BatchRequest

GAME = "win(X) :- move(X, Y), not win(Y)."
BOARD = "move(1, 2). move(2, 1). move(2, 3)."
COMMITTEE = "in(X) :- member(X), not out(X).\nout(X) :- member(X), not in(X)."
MEMBERS = "member(a). member(b). member(c)."
# A committee big enough that one tie-breaking solve takes ~100ms+.
# The soft-timeout tests race a sub-millisecond deadline against it;
# the margin must dwarf the event loop's wakeup latency (tens of ms on
# a busy single-CPU box, where the solve thread holds the GIL).
BIG_MEMBERS = " ".join(f"member(m{i})." for i in range(2000))

PROBE = ["in(a)", "in(b)", "in(c)"]


@pytest.fixture
def artifact(tmp_path):
    path = tmp_path / "committee.repro-ground"
    Engine(COMMITTEE, MEMBERS).save_artifact(path)
    return path


async def send_requests(address, requests):
    """One JSONL client connection: send all lines, read all responses."""
    reader, writer = await asyncio.open_connection(*address)
    for obj in requests:
        writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()
    responses = []
    for _ in requests:
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        responses.append(json.loads(line))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    return responses


class TestConcurrentServing:
    def test_concurrent_clients_match_inline_oracle(self, artifact):
        """8 connections x 4 seeded requests, answers keyed back by id."""
        oracle_engine = Engine.from_artifact(artifact)
        expected = {
            seed: solve_one(oracle_engine, BatchRequest(seed=seed, atoms=tuple(PROBE)))["values"]
            for seed in range(4)
        }

        async def main():
            async with ReproServer(artifact) as server:
                batches = [
                    [
                        {"id": f"c{client}-r{i}", "seed": i % 4, "atoms": PROBE}
                        for i in range(4)
                    ]
                    for client in range(8)
                ]
                return await asyncio.gather(
                    *(send_requests(server.address, batch) for batch in batches)
                )

        for batch in asyncio.run(main()):
            for response in batch:
                assert response["ok"], response
                seed = int(response["id"].rsplit("r", 1)[1]) % 4
                assert response["values"] == expected[seed]
                # Every admitted result documents the pressure it saw.
                assert response["timings"]["queue_wait_s"] >= 0
                assert response["timings"]["queue_depth"] >= 1
                assert response["server"]["max_pending"] == 256

    def test_pooled_workers_match_inline_oracle(self, artifact):
        oracle_engine = Engine.from_artifact(artifact)
        requests = [{"id": i, "seed": i, "atoms": PROBE} for i in range(6)]
        expected = {
            r["id"]: solve_one(
                oracle_engine, BatchRequest(seed=r["seed"], atoms=tuple(PROBE))
            )["values"]
            for r in requests
        }

        async def main():
            async with ReproServer(artifact, workers=2) as server:
                return await send_requests(server.address, requests)

        for response in asyncio.run(main()):
            assert response["ok"], response
            assert response["values"] == expected[response["id"]]
            assert response["server"]["workers"] == 2
            # The pool path reports the worker's own solve wall clock.
            assert response["timings"]["worker_s"] > 0

    def test_invalid_json_line_fails_that_line_only(self, artifact):
        async def main():
            async with ReproServer(artifact) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"this is not json\n")
                writer.write(json.dumps({"id": "ok", "atoms": PROBE}).encode() + b"\n")
                await writer.drain()
                responses = [
                    json.loads(await asyncio.wait_for(reader.readline(), timeout=30))
                    for _ in range(2)
                ]
                writer.close()
                return responses

        responses = {r["id"]: r for r in asyncio.run(main())}
        assert not responses[None]["ok"]
        assert responses[None]["error_kind"] == "validation"
        assert responses["ok"]["ok"]


class TestAdmissionControl:
    def test_overload_sheds_with_structured_result(self, artifact):
        """max_pending=1 and 4 simultaneous requests: 1 answered, 3 shed.

        ``handle_line``'s admission check runs before its first await, so
        once the first request is in flight the rest shed synchronously —
        the count is deterministic, not a race.
        """

        async def main():
            async with ReproServer(artifact, max_pending=1) as server:
                line = json.dumps({"id": "x", "atoms": PROBE})
                return await asyncio.gather(
                    *(asyncio.create_task(server.handle_line(line)) for _ in range(4))
                ), server.stats()

        results, stats = asyncio.run(main())
        ok = [r for r in results if r["ok"]]
        shed = [r for r in results if not r["ok"]]
        assert len(ok) == 1 and len(shed) == 3
        for r in shed:
            assert r["error_kind"] == "overloaded"
            assert "retry with backoff" in r["error"]
            assert r["timings"]["queue_wait_s"] == 0.0
            assert r["timings"]["queue_depth"] == 1
            assert r["server"]["max_pending"] == 1
        assert stats["served"] == 1 and stats["shed"] == 3

    def test_draining_server_sheds_new_requests(self, artifact):
        async def main():
            server = ReproServer(artifact)
            await server.start()
            await server.drain()
            return await server.handle_line(json.dumps({"id": "late"}))

        result = asyncio.run(main())
        assert not result["ok"]
        assert result["error_kind"] == "draining"

    def test_updates_without_session_are_rejected(self, artifact):
        async def main():
            async with ReproServer(artifact) as server:
                return await server.handle_line(
                    json.dumps({"id": "u", "insert": ["member(z)"]})
                )

        result = asyncio.run(main())
        assert not result["ok"]
        assert result["error_kind"] == "validation"
        assert "session" in result["error"]


class TestServerSessions:
    def test_session_updates_serialize_across_connections(self, tmp_path):
        artifact = tmp_path / "game.repro-ground"
        Engine(GAME, BOARD).save_artifact(artifact)
        inserts = [f"move({10 + i}, 1)" for i in range(6)]

        async def main():
            async with ReproServer(artifact) as server:
                # Six connections race inserts into ONE session...
                batches = await asyncio.gather(
                    *(
                        send_requests(
                            server.address,
                            [{"id": i, "session": "shared", "insert": [fact],
                              "semantics": "well_founded"}],
                        )
                        for i, fact in enumerate(inserts)
                    )
                )
                # ... then one final read sees every update applied.
                final = await send_requests(
                    server.address,
                    [{"id": "final", "session": "shared", "semantics": "well_founded",
                      "atoms": [f"win({10 + i})" for i in range(6)]}],
                )
                return [b[0] for b in batches], final[0]

        updates, final = asyncio.run(main())
        assert all(r["ok"] for r in updates), updates
        # The apply-loop stamped each operation with its position in the
        # session's total order: a permutation of 1..6, no slot reused.
        seqs = sorted(r["session"]["seq"] for r in updates)
        assert seqs == list(range(1, 7))
        assert final["ok"]
        assert final["session"]["seq"] == 7
        assert final["session"]["updates"] == 6
        # Replay the six inserts single-threaded: models must agree.
        replay = Engine.from_artifact(artifact)
        for fact in inserts:
            replay.insert_facts(fact)
        expected = solve_one(
            replay,
            BatchRequest(
                semantics="well_founded",
                atoms=tuple(f"win({10 + i})" for i in range(6)),
            ),
        )["values"]
        assert final["values"] == expected

    def test_independent_sessions_and_snapshot_on_drain(self, tmp_path):
        from repro.io.artifact import ArtifactCache

        artifact = tmp_path / "game.repro-ground"
        Engine(GAME, BOARD).save_artifact(artifact)
        cache = ArtifactCache(tmp_path / "cache")

        async def main():
            async with ReproServer(artifact, session_cache=cache) as server:
                responses = await send_requests(
                    server.address,
                    [
                        {"id": "a", "session": "a", "insert": ["move(3, 1)"]},
                        {"id": "b", "session": "b", "semantics": "well_founded"},
                    ],
                )
                return {r["id"]: r for r in responses}, server.sessions.stats()

        responses, stats = asyncio.run(main())
        assert responses["a"]["ok"] and responses["b"]["ok"]
        assert responses["a"]["session"]["name"] == "a"
        assert stats["created"] == 2
        # Drain snapshotted the mutated session only; session "b" was
        # read-only and stores nothing.
        assert len(cache) == 1

    def test_session_limit_is_a_structured_error(self, artifact):
        async def main():
            async with ReproServer(artifact, max_sessions=1) as server:
                await server.handle_line(json.dumps({"session": "one"}))
                return await server.handle_line(json.dumps({"session": "two"}))

        result = asyncio.run(main())
        assert not result["ok"]
        assert result["error_kind"] == "session_limit"
        assert "session table full" in result["error"]


class TestTimeouts:
    def test_soft_timeout_answers_inline_requests(self, tmp_path):
        artifact = tmp_path / "big.repro-ground"
        Engine(COMMITTEE, BIG_MEMBERS).save_artifact(artifact)

        async def main():
            async with ReproServer(artifact, timeout_s=1e-4) as server:
                return await server.handle_line(json.dumps({"id": "slow"}))

        result = asyncio.run(main())
        assert not result["ok"]
        assert result["error_kind"] == "timeout"
        assert result["timeout_s"] == 1e-4
        # Even a timed-out answer documents the pressure it saw.
        assert result["timings"]["queue_depth"] == 1

    def test_soft_timeout_never_tears_a_session_apply(self, tmp_path):
        artifact = tmp_path / "big.repro-ground"
        Engine(COMMITTEE, BIG_MEMBERS).save_artifact(artifact)

        async def main():
            async with ReproServer(artifact, timeout_s=1e-4) as server:
                timed_out = await server.handle_line(
                    json.dumps({"id": "u", "session": "s", "insert": ["member(zz)"]})
                )
                # The apply ran to completion behind the timeout answer:
                # wait for the session lock to free, then read the state.
                session = server.sessions.get("s")
                while session.lock.locked() or session.pending:
                    await asyncio.sleep(0.01)
                return timed_out, session.engine.update_calls

        timed_out, update_calls = asyncio.run(main())
        assert not timed_out["ok"] and timed_out["error_kind"] == "timeout"
        assert update_calls == 1


class TestControlPlane:
    def test_ping_stats_and_unknown_op(self, artifact):
        async def main():
            async with ReproServer(artifact) as server:
                await server.handle_line(json.dumps({"id": "warm", "atoms": PROBE}))
                return await asyncio.gather(
                    server.handle_line(json.dumps({"op": "ping", "id": 1})),
                    server.handle_line(json.dumps({"op": "stats"})),
                    server.handle_line(json.dumps({"op": "reboot"})),
                )

        ping, stats, unknown = asyncio.run(main())
        assert ping == {"schema": "repro-batch/1", "op": "ping", "ok": True, "id": 1}
        assert stats["ok"] and stats["stats"]["served"] == 1
        assert stats["stats"]["sessions"]["live"] == 0
        assert not unknown["ok"] and "unknown control op" in unknown["error"]


class TestLifecycle:
    def test_run_server_drains_on_sigterm(self, artifact):
        ready = io.StringIO()

        async def main():
            server = ReproServer(artifact)
            task = asyncio.create_task(run_server(server, ready_stream=ready))
            while server.address is None:
                await asyncio.sleep(0.01)
            responses = await send_requests(
                server.address, [{"id": "before-term", "atoms": PROBE}]
            )
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(task, timeout=30)
            return responses, server

        responses, server = asyncio.run(main())
        assert responses[0]["ok"]
        assert server.stats()["draining"] is True
        output = ready.getvalue()
        assert "repro server listening on 127.0.0.1:" in output
        assert "repro server draining" in output

    def test_cli_server_needs_program_or_artifact(self, capsys):
        assert main(["server"]) == 2
        assert "needs a program file" in capsys.readouterr().err
