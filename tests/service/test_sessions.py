"""Session manager: serialized apply, parallel sessions, expiry, snapshots."""

import asyncio

import pytest

from repro import Engine
from repro.errors import SessionLimitError
from repro.io.artifact import ArtifactCache
from repro.service import SessionManager

GAME = "win(X) :- move(X, Y), not win(Y)."
BOARD = "move(1, 2). move(2, 1). move(2, 3)."


@pytest.fixture
def artifact(tmp_path):
    path = tmp_path / "game.repro-ground"
    Engine(GAME, BOARD).save_artifact(path)
    return path


def true_set(engine, semantics="well_founded"):
    return frozenset(str(a) for a in engine.solve(semantics).true_atoms)


class TestSerializedApply:
    def test_interleaved_updates_match_single_threaded_replay(self, artifact):
        """Concurrent ops on one session apply in a total order.

        Each op yields mid-critical-section (the await inside the lock);
        without serialization the order log would interleave.  The final
        model must equal replaying the logged order on a fresh engine.
        """
        order: list[int] = []

        async def main():
            manager = SessionManager(lambda: Engine.from_artifact(artifact))

            async def op(i):
                async def work(session):
                    order.append(i)
                    await asyncio.sleep(0.001)  # give rivals a chance to barge in
                    session.engine.insert_facts(f"move({10 + i}, 1)")
                    assert order[-1] == i, "another op ran inside the critical section"
                    return session.seq

                return await manager.run("s", work)

            seqs = await asyncio.gather(*(op(i) for i in range(8)))
            assert sorted(seqs) == list(range(1, 9))
            session = manager.get("s")
            assert session is not None and session.engine.update_calls == 8
            return true_set(session.engine)

        live_true = asyncio.run(main())
        assert len(order) == 8
        replay = Engine.from_artifact(artifact)
        for i in order:
            replay.insert_facts(f"move({10 + i}, 1)")
        assert live_true == true_set(replay)

    def test_independent_sessions_proceed_in_parallel(self, artifact):
        """Session "a" blocks on an event only session "b" can set."""

        async def main():
            manager = SessionManager(lambda: Engine.from_artifact(artifact))
            gate = asyncio.Event()

            async def work_a(session):
                await asyncio.wait_for(gate.wait(), timeout=2)
                return "a"

            async def work_b(session):
                gate.set()
                return "b"

            return await asyncio.gather(manager.run("a", work_a), manager.run("b", work_b))

        assert asyncio.run(main()) == ["a", "b"]
        # The converse — both ops on ONE session — would deadlock (work_a
        # holds the lock work_b needs), which is exactly the serialization
        # the manager promises; covered by the interleaving test above.


class TestExpiry:
    def test_idle_sessions_expire_after_ttl(self, artifact):
        clock = [0.0]

        async def main():
            manager = SessionManager(
                lambda: Engine.from_artifact(artifact),
                ttl_s=10.0,
                clock=lambda: clock[0],
            )

            async def work(session):
                return session.name

            await manager.run("s", work)
            assert manager.expire_idle() == []  # still fresh
            clock[0] = 9.0
            assert manager.expire_idle() == []
            clock[0] = 10.0
            assert manager.expire_idle() == ["s"]
            assert len(manager) == 0
            assert manager.stats()["expired"] == 1

        asyncio.run(main())

    def test_sessions_with_queued_work_never_expire(self, artifact):
        clock = [0.0]

        async def main():
            manager = SessionManager(
                lambda: Engine.from_artifact(artifact),
                ttl_s=10.0,
                clock=lambda: clock[0],
            )
            release = asyncio.Event()

            async def slow(session):
                await release.wait()
                return "done"

            task = asyncio.create_task(manager.run("s", slow))
            await asyncio.sleep(0)  # let the op take the lock
            clock[0] = 100.0
            assert manager.expire_idle() == []  # busy, despite the stale clock
            release.set()
            assert await task == "done"
            assert manager.expire_idle() == []  # last_active refreshed on exit
            clock[0] = 200.0
            assert manager.expire_idle() == ["s"]

        asyncio.run(main())

    def test_session_limit_is_enforced(self, artifact):
        async def main():
            manager = SessionManager(
                lambda: Engine.from_artifact(artifact), max_sessions=1
            )

            async def work(session):
                return session.name

            await manager.run("only", work)
            with pytest.raises(SessionLimitError, match="session table full"):
                await manager.run("overflow", work)
            # Reusing the existing session is still fine.
            assert await manager.run("only", work) == "only"

        asyncio.run(main())


class TestSnapshots:
    def test_expired_session_snapshots_mutated_state(self, artifact, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        clock = [0.0]

        async def main():
            manager = SessionManager(
                lambda: Engine.from_artifact(artifact),
                ttl_s=10.0,
                cache=cache,
                clock=lambda: clock[0],
            )

            async def work(session):
                session.engine.insert_facts("move(3, 1)")
                return session.engine.database.copy()

            database = await manager.run("s", work)
            clock[0] = 20.0
            assert manager.expire_idle() == ["s"]
            assert manager.stats()["snapshots"] == 1
            return database

        database = asyncio.run(main())
        assert len(cache) == 1
        # The snapshot key is exactly what a fresh engine over the mutated
        # inputs probes: it warm-starts without grounding.
        warm = Engine(GAME, database, artifact_cache=cache)
        warm.solve("well_founded")
        assert warm.stats()["artifact_hits"] == 1
        assert warm.ground_calls == 0

    def test_read_only_sessions_do_not_snapshot(self, artifact, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")

        async def main():
            manager = SessionManager(
                lambda: Engine.from_artifact(artifact), cache=cache
            )

            async def work(session):
                return true_set(session.engine)

            await manager.run("reader", work)
            assert manager.close_all() == ["reader"]
            assert manager.stats()["snapshots"] == 0

        asyncio.run(main())
        assert len(cache) == 0

    def test_close_all_snapshots_every_mutated_session(self, artifact, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")

        async def main():
            manager = SessionManager(
                lambda: Engine.from_artifact(artifact), cache=cache
            )

            async def mutate(session):
                session.engine.insert_facts(f"move({session.name}, 1)")

            await manager.run("7", mutate)
            await manager.run("8", mutate)
            assert sorted(manager.close_all()) == ["7", "8"]
            assert manager.stats()["snapshots"] == 2
            assert len(manager) == 0

        asyncio.run(main())
        assert len(cache) == 2
