"""The warm-start batch service: requests, sharding, CLI surface."""

import json
import threading

import pytest

from repro.cli import main
from repro.errors import (
    ReproError,
    SessionLimitError,
    SolveTimeoutError,
    ValidationError,
)
from repro.service import (
    BATCH_SCHEMA,
    BatchRequest,
    BatchSolver,
    error_kind_of,
    failure_result,
    read_requests,
    solve_one,
)

GAME = "win(X) :- move(X, Y), not win(Y)."
BOARD = "move(1, 2). move(2, 1). move(2, 3)."
COMMITTEE = "in(X) :- member(X), not out(X).\nout(X) :- member(X), not in(X)."
MEMBERS = "member(a). member(b). member(c)."
# Large enough that a solve takes real milliseconds; the hard-deadline
# tests arm a microsecond timer against it.
BIG_MEMBERS = " ".join(f"member(m{i})." for i in range(500))


class TestBatchRequest:
    def test_defaults_and_round_trip(self):
        req = BatchRequest.from_obj({"id": "r1", "semantics": "stable"}, default_id=0)
        assert req.id == "r1" and req.semantics == "stable"
        assert BatchRequest.from_obj(req.to_obj()) == req

    def test_default_id_is_positional(self):
        assert BatchRequest.from_obj({}, default_id=7).id == 7

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown batch request field"):
            BatchRequest.from_obj({"semantic": "wf"})

    def test_rejects_non_object_and_bad_types(self):
        with pytest.raises(ValidationError, match="JSON object"):
            BatchRequest.from_obj(["not", "an", "object"])
        with pytest.raises(ValidationError, match="'atoms'"):
            BatchRequest.from_obj({"atoms": "win(1)"})
        with pytest.raises(ValidationError, match="'seed'"):
            BatchRequest.from_obj({"seed": "seven"})
        with pytest.raises(ValidationError, match="schema"):
            BatchRequest.from_obj({"schema": "repro-batchreq/999"})

    def test_policy_resolution(self):
        assert BatchRequest().resolve_policy() is None
        assert repr(BatchRequest(policy="first_side_true").resolve_policy()) == "FirstSideTrue()"
        assert repr(BatchRequest(seed=3).resolve_policy()) == "RandomChoice(seed=3)"
        assert (
            repr(BatchRequest(policy="random", seed=9).resolve_policy()) == "RandomChoice(seed=9)"
        )
        with pytest.raises(ValidationError, match="unknown policy"):
            BatchRequest(policy="coin_flip").resolve_policy()
        with pytest.raises(ValidationError, match="does not take a seed"):
            BatchRequest(policy="fewest_true", seed=1).resolve_policy()


class TestReadRequests:
    def test_blank_lines_skipped_bad_lines_isolated(self):
        lines = [
            '{"id": "a"}',
            "",
            "not json",
            '{"id": "b", "bogus": 1}',
        ]
        parsed = read_requests(lines)
        assert isinstance(parsed[0], BatchRequest) and parsed[0].id == "a"
        assert isinstance(parsed[1], ValidationError) and "line 3" in str(parsed[1])
        assert isinstance(parsed[2], ValidationError) and "line 4" in str(parsed[2])

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"id": 1}\n{"id": 2}\n')
        assert [r.id for r in read_requests(path)] == [1, 2]


class TestBatchSolverInline:
    def test_per_request_semantics_and_atoms(self, tmp_path):
        with BatchSolver(
            tmp_path / "game.rg", program=GAME, database=BOARD, grounding="relevant"
        ) as solver:
            results = solver.solve_many(
                [
                    {"id": "wf", "semantics": "well_founded", "atoms": ["win(1)", "win(2)"]},
                    {"id": "tb", "semantics": "tie_breaking"},
                    {"id": "bad", "semantics": "nonsense"},
                ]
            )
        assert [r["id"] for r in results] == ["wf", "tb", "bad"]
        assert results[0]["ok"] and results[0]["values"] == {"win(1)": False, "win(2)": True}
        assert results[1]["ok"] and results[1]["solution"]["schema"] == "repro-solution/1"
        assert not results[2]["ok"] and "unknown semantics" in results[2]["error"]
        assert all(r["schema"] == BATCH_SCHEMA for r in results)

    def test_requests_never_reground(self, tmp_path):
        with BatchSolver(tmp_path / "game.rg", program=GAME, database=BOARD) as solver:
            solver.solve_many([{"semantics": "well_founded"}, {"semantics": "tie_breaking"}])
            assert solver.engine.ground_calls <= 1  # one compile serves the batch

    def test_seeded_requests_replay(self, tmp_path):
        with BatchSolver(
            tmp_path / "c.rg", program=COMMITTEE, database=MEMBERS, grounding="relevant"
        ) as solver:
            a1, a2, b = solver.solve_many(
                [
                    {"id": 1, "seed": 7, "atoms": ["in(a)", "in(b)", "in(c)"]},
                    {"id": 2, "seed": 7, "atoms": ["in(a)", "in(b)", "in(c)"]},
                    {"id": 3, "seed": 8, "atoms": ["in(a)", "in(b)", "in(c)"]},
                ]
            )
        assert a1["values"] == a2["values"]
        assert all(r["total"] for r in (a1, a2, b))

    def test_temp_artifact_cleanup(self):
        solver = BatchSolver(program=GAME, database=BOARD)
        path = solver.artifact_path
        assert path.exists()
        solver.close()
        assert not path.exists()

    def test_needs_program_or_artifact(self, tmp_path):
        with pytest.raises(ValidationError, match="existing artifact or a program"):
            BatchSolver(tmp_path / "missing.rg")

    def test_validation_error_placeholders_become_results(self, tmp_path):
        with BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD) as solver:
            results = solver.solve_many(read_requests(['{"id": 1}', "garbage"]))
        assert results[0]["ok"]
        assert not results[1]["ok"] and "invalid JSON" in results[1]["error"]

    def test_failed_validation_echoes_request_id(self, tmp_path):
        with BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD) as solver:
            results = solver.solve_many(
                read_requests(['{"id": "req-7", "bogus": 1}'])
                + [{"id": "req-8", "also_bogus": 2}]
            )
        assert [r["id"] for r in results] == ["req-7", "req-8"]
        assert not any(r["ok"] for r in results)

    def test_stale_artifact_is_rejected(self, tmp_path):
        artifact = tmp_path / "g.rg"
        with BatchSolver(artifact, program=GAME, database=BOARD):
            pass
        # Same inputs: the fingerprint matches, serving proceeds.
        with BatchSolver(artifact, program=GAME, database=BOARD) as solver:
            assert solver.solve_many([{"semantics": "well_founded"}])[0]["ok"]
        # Edited program against the stale artifact: refused loudly.
        with pytest.raises(ValidationError, match="different \\(program, database\\)"):
            BatchSolver(artifact, program="r(b).", database=None)


class TestBatchSolverWorkers:
    def test_worker_pool_matches_inline(self, tmp_path):
        requests = [
            {"id": i, "semantics": "tie_breaking", "seed": i, "atoms": ["in(a)", "out(a)"]}
            for i in range(6)
        ] + [{"id": "oops", "semantics": "nope"}]
        artifact = tmp_path / "c.rg"
        with BatchSolver(artifact, program=COMMITTEE, database=MEMBERS) as inline:
            expected = inline.solve_many(requests)
        with BatchSolver(artifact, workers=2) as sharded:
            actual = sharded.solve_many(requests)
            # A pool-only solver never loads an engine in the parent.
            assert sharded._engine is None
        # Wall-clock solve-phase stats are the only nondeterministic part.
        assert all("timings" in r for r in actual if r["ok"])
        for r in actual + expected:
            r.pop("timings", None)
        assert actual == expected
        assert [r["id"] for r in actual] == [r["id"] for r in requests]

    def test_solve_file_round_trip(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"id": "q", "semantics": "well_founded", "atoms": ["win(3)"]}\n')
        with BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD, workers=1) as solver:
            results = solver.solve_file(requests)
        assert results[0]["values"] == {"win(3)": False}

    def test_rejects_negative_workers(self, tmp_path):
        with pytest.raises(ValidationError, match="workers"):
            BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD, workers=-1)

    def test_corrupt_artifact_fails_at_construction_not_in_workers(self, tmp_path):
        # A raising pool initializer would respawn workers forever; the
        # solver must reject a corrupt artifact before any pool exists.
        from repro.errors import ArtifactError

        artifact = tmp_path / "c.rg"
        with BatchSolver(artifact, program=GAME, database=BOARD):
            pass
        artifact.write_bytes(artifact.read_bytes()[:50])
        with pytest.raises(ArtifactError):
            BatchSolver(artifact, workers=2)

    def test_malformed_atom_fails_the_request(self, tmp_path):
        with BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD) as solver:
            result = solver.solve_many(
                [{"id": "bad-atom", "semantics": "well_founded", "atoms": ["win("]}]
            )[0]
        assert result["id"] == "bad-atom" and not result["ok"]


class TestErrorKinds:
    def test_taxonomy_covers_the_error_tree(self):
        assert error_kind_of(ValidationError("bad field")) == "validation"
        assert error_kind_of(SolveTimeoutError(1.5)) == "timeout"
        assert error_kind_of(SessionLimitError("full")) == "session_limit"
        assert error_kind_of(ReproError("anything else")) == "error"

    def test_timeout_results_echo_the_deadline(self):
        result = failure_result("r1", SolveTimeoutError(0.25))
        assert result == {
            "schema": BATCH_SCHEMA,
            "id": "r1",
            "ok": False,
            "error": "solve exceeded the 0.25s per-request deadline",
            "error_kind": "timeout",
            "timeout_s": 0.25,
        }


class TestSessionField:
    def test_session_round_trips_and_validates(self):
        req = BatchRequest.from_obj({"session": "alice", "insert": ["member(d)"]})
        assert req.session == "alice"
        assert BatchRequest.from_obj(req.to_obj()) == req
        with pytest.raises(ValidationError, match="'session'"):
            BatchRequest.from_obj({"session": ""})
        with pytest.raises(ValidationError, match="'session'"):
            BatchRequest.from_obj({"session": 7})

    def test_sessioned_batches_are_answered_inline(self, tmp_path):
        # Offline, the batch's one engine *is* the session: a sessioned
        # request must not shard (worker engines would not share state).
        artifact = tmp_path / "g.rg"
        with BatchSolver(artifact, program=GAME, database=BOARD):
            pass
        with BatchSolver(artifact, workers=2) as solver:
            results = solver.solve_many(
                [
                    {"id": 1, "session": "s", "insert": ["move(4, 3)"]},
                    {"id": 2, "session": "s", "semantics": "well_founded",
                     "atoms": ["win(4)"]},
                ]
            )
        assert all(r["ok"] for r in results)
        assert results[0]["updates"]["inserted"] == ["move(4, 3)"]
        # 3 has no exits, so the new move makes 4 a won position — and
        # request 2 sees request 1's insert: the batch engine is the session.
        assert results[1]["values"] == {"win(4)": True}


class TestTimeouts:
    def test_hard_deadline_fails_the_request_inline(self, tmp_path):
        with BatchSolver(
            tmp_path / "big.rg", program=COMMITTEE, database=BIG_MEMBERS, timeout_s=1e-6
        ) as solver:
            result = solver.solve_many([{"id": "slow"}])[0]
        assert not result["ok"]
        assert result["error_kind"] == "timeout"
        assert result["timeout_s"] == 1e-6

    def test_hard_deadline_fires_inside_workers(self, tmp_path):
        artifact = tmp_path / "big.rg"
        with BatchSolver(artifact, program=COMMITTEE, database=BIG_MEMBERS):
            pass
        with BatchSolver(artifact, workers=1, timeout_s=1e-6) as solver:
            results = solver.solve_many([{"id": i} for i in range(2)])
        assert [r["error_kind"] for r in results] == ["timeout", "timeout"]
        # The worker survived its timeouts: the pool is not respawning.
        assert all(r["timings"]["worker_s"] > 0 for r in results)

    def test_deadline_degrades_to_unenforced_off_main_thread(self, tmp_path):
        # SIGALRM cannot be delivered to executor threads; solve_one must
        # run to completion there, leaving supervision to the caller.
        with BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD) as solver:
            outcome = []
            worker = threading.Thread(
                target=lambda: outcome.append(
                    solve_one(solver.engine, BatchRequest(id="t"), timeout_s=1e-6)
                )
            )
            worker.start()
            worker.join()
        assert outcome[0]["ok"] is True

    def test_rejects_non_positive_timeout_and_chunksize(self, tmp_path):
        with pytest.raises(ValidationError, match="timeout_s"):
            BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD, timeout_s=0)
        with pytest.raises(ValidationError, match="chunksize"):
            BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD, chunksize=0)


class TestApplyAsync:
    def test_requires_workers(self, tmp_path):
        with BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD) as solver:
            with pytest.raises(ValidationError, match="workers >= 1"):
                solver.apply_async(BatchRequest(id="x"))

    def test_rejects_stateful_requests_before_the_pool_exists(self, tmp_path):
        artifact = tmp_path / "g.rg"
        with BatchSolver(artifact, program=GAME, database=BOARD):
            pass
        with BatchSolver(artifact, workers=2) as solver:
            with pytest.raises(ValidationError, match="stateful"):
                solver.apply_async(BatchRequest(insert=("move(9, 1)",)))
            with pytest.raises(ValidationError, match="stateful"):
                solver.apply_async(BatchRequest(session="s"))
            assert solver._pool is None  # rejected without forking anything

    def test_dispatches_through_callbacks(self, tmp_path):
        artifact = tmp_path / "g.rg"
        with BatchSolver(artifact, program=GAME, database=BOARD):
            pass
        done = threading.Event()
        results = []
        with BatchSolver(artifact, workers=1) as solver:
            solver.apply_async(
                BatchRequest(id="a", semantics="well_founded", atoms=("win(2)",)),
                callback=lambda r: (results.append(r), done.set()),
            )
            assert done.wait(timeout=30)
        assert results[0]["ok"] and results[0]["values"] == {"win(2)": True}


class TestServeCli:
    def _files(self, tmp_path):
        program = tmp_path / "game.dl"
        program.write_text(GAME + "\n")
        db = tmp_path / "board.facts"
        db.write_text(BOARD + "\n")
        return program, db

    def test_serve_writes_results_and_artifact(self, tmp_path, capsys):
        program, db = self._files(tmp_path)
        batch = tmp_path / "requests.jsonl"
        batch.write_text(
            '{"id": "a", "semantics": "well_founded", "atoms": ["win(2)"]}\n'
            '{"id": "b", "semantics": "tie_breaking"}\n'
        )
        artifact = tmp_path / "game.repro-ground"
        code = main(
            [
                "serve",
                str(program),
                "--db",
                str(db),
                "--batch",
                str(batch),
                "--artifact",
                str(artifact),
            ]
        )
        assert code == 0
        assert artifact.exists()
        lines = [json.loads(x) for x in capsys.readouterr().out.splitlines()]
        assert [r["id"] for r in lines] == ["a", "b"]
        assert lines[0]["values"] == {"win(2)": True}

        # Second invocation: warm start from the artifact alone, to a file.
        out = tmp_path / "results.jsonl"
        code = main(
            ["serve", "--batch", str(batch), "--artifact", str(artifact), "--output", str(out)]
        )
        assert code == 0
        warm = [json.loads(x) for x in out.read_text().splitlines()]

        def scrub(results):
            for r in results:
                r.pop("timings", None)
                if "solution" in r:
                    r["solution"].pop("timings", None)
            return results

        assert scrub(warm) == scrub(lines)

    def test_serve_failed_request_exit_code(self, tmp_path, capsys):
        program, db = self._files(tmp_path)
        batch = tmp_path / "requests.jsonl"
        batch.write_text('{"id": "x", "semantics": "nope"}\n')
        code = main(["serve", str(program), "--db", str(db), "--batch", str(batch)])
        assert code == 3

    def test_serve_needs_program_or_artifact(self, tmp_path, capsys):
        batch = tmp_path / "requests.jsonl"
        batch.write_text("{}\n")
        assert main(["serve", "--batch", str(batch)]) == 2


class TestBackendField:
    """Per-request and per-solver kernel backend selection."""

    def test_round_trip_and_validation(self):
        req = BatchRequest.from_obj({"backend": "auto"})
        assert req.backend == "auto"
        assert BatchRequest.from_obj(req.to_obj()) == req
        assert BatchRequest.from_obj({}).backend is None
        with pytest.raises(ValidationError, match="unknown backend"):
            BatchRequest.from_obj({"backend": "gpu"})
        with pytest.raises(ValidationError, match="unknown backend"):
            BatchRequest.from_obj({"backend": 3})

    def test_solver_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValidationError, match="backend"):
            BatchSolver(tmp_path / "g.rg", program=GAME, database=BOARD, backend="gpu")

    def test_request_backend_routes_through_solver(self, tmp_path):
        from repro.ground.array_state import numpy_available

        with BatchSolver(
            tmp_path / "c.rg", program=COMMITTEE, database=MEMBERS, grounding="relevant"
        ) as solver:
            atoms = ["in(a)", "in(b)", "in(c)"]
            python_r, array_r = solver.solve_many(
                [
                    {"id": "p", "backend": "python", "atoms": atoms},
                    {"id": "a", "backend": "array", "atoms": atoms},
                ]
            )
        assert python_r["ok"]
        if numpy_available():
            assert array_r["ok"]
            assert array_r["values"] == python_r["values"]
        else:
            assert not array_r["ok"]
            assert "requires numpy" in array_r["error"]

    def test_solver_default_backend_applies(self, tmp_path):
        with BatchSolver(
            tmp_path / "c.rg",
            program=COMMITTEE,
            database=MEMBERS,
            grounding="relevant",
            backend="auto",  # tiny program: auto resolves to python
        ) as solver:
            (result,) = solver.solve_many([{"id": 1, "atoms": ["in(a)"]}])
        assert result["ok"] and result["total"]
