"""Engine facade tests: compile-once caching, batching, uniform results."""

import pytest

import repro.api.engine as engine_module
from repro.api import Engine, Solution, available_semantics, solve
from repro.datalog.atoms import Atom
from repro.datalog.grounding import GroundIndex, ground
from repro.datalog.terms import Constant
from repro.datalog.parser import parse_database, parse_program
from repro.errors import SemanticsError

WIN_MOVE = "win(X) :- move(X, Y), not win(Y)."
DRAW_DB = "move(1, 2). move(2, 1)."


class TestGroundOnce:
    """Regression: N solves + M queries trigger exactly one grounding."""

    def test_single_ground_and_compile_across_solves_and_queries(self, monkeypatch):
        ground_calls = []
        index_builds = []

        real_ground = engine_module.ground

        def counting_ground(*args, **kwargs):
            ground_calls.append(kwargs.get("mode"))
            return real_ground(*args, **kwargs)

        real_index_build = GroundIndex._build

        def counting_index_build(self, *args, **kwargs):
            index_builds.append(id(self))
            real_index_build(self, *args, **kwargs)

        monkeypatch.setattr(engine_module, "ground", counting_ground)
        monkeypatch.setattr(GroundIndex, "_build", counting_index_build)

        engine = Engine(WIN_MOVE, DRAW_DB, grounding="relevant")
        for _ in range(4):  # N solves ...
            engine.solve("well_founded")
            engine.solve("tie_breaking")
        for _ in range(3):  # ... + M batched queries
            engine.query_many(["win(1)", "win(2)"], semantics="tie_breaking")
            engine.query("win", semantics="well_founded")

        assert ground_calls == ["relevant"]
        assert len(index_builds) == 1
        assert engine.ground_calls == 1
        assert engine.index_builds == 1

    def test_modes_ground_independently_but_once_each(self):
        engine = Engine(WIN_MOVE, DRAW_DB)
        engine.solve("well_founded")      # relevant (spec default)
        engine.solve("pure_tie_breaking")  # full (spec default)
        engine.solve("fitting")            # full, cached
        engine.solve("completion")         # full, cached
        assert engine.ground_calls == 2
        assert engine.stats()["cached_modes"] == ["full", "relevant"]

    def test_shared_index_object_identity(self):
        engine = Engine(WIN_MOVE, DRAW_DB, grounding="full")
        first = engine.ground_for("full").index
        engine.solve("tie_breaking")
        engine.solve("fitting")
        assert engine.ground_for("full").index is first

    def test_pinned_ground_program_is_never_reground(self):
        program = parse_program(WIN_MOVE)
        database = parse_database(DRAW_DB)
        gp = ground(program, database, mode="full")
        engine = Engine(program, database, ground_program=gp)
        engine.solve("well_founded")
        engine.solve("pure_tie_breaking")
        assert engine.ground_calls == 0
        assert engine.ground_for("relevant") is gp  # pinned wins


class TestSolve:
    def test_every_registered_semantics_returns_a_solution(self):
        # Stratified program: every registered semantics is defined on it
        # and they all agree that t(1) is true.
        engine = Engine("t(X) :- e(X), not f(X).", "e(1).")
        target = Atom("t", (Constant(1),))
        for name in available_semantics():
            solution = engine.solve(name)
            assert isinstance(solution, Solution)
            assert solution.semantics == name
            assert solution.found and solution.total
            assert solution.value(target) is True

    def test_draw_cycle_semantics_ladder(self):
        engine = Engine(WIN_MOVE, DRAW_DB, grounding="full")
        assert not engine.solve("fitting").total
        assert not engine.solve("well_founded").total
        assert engine.solve("tie_breaking").total
        assert engine.solve("stable").found

    def test_solution_timings_and_grounding_metadata(self):
        engine = Engine(WIN_MOVE, DRAW_DB)
        solution = engine.solve("well_founded")
        assert solution.grounding == "relevant"
        for key in ("parse_s", "ground_s", "compile_s", "solve_s"):
            assert solution.timings[key] >= 0.0

    def test_unknown_semantics_lists_available(self):
        engine = Engine(WIN_MOVE)
        with pytest.raises(SemanticsError, match="well_founded"):
            engine.solve("nope")

    def test_unknown_option_rejected(self):
        engine = Engine(WIN_MOVE)
        with pytest.raises(SemanticsError, match="does not accept"):
            engine.solve("well_founded", policy=object())

    def test_aliases_resolve_to_canonical_name(self):
        engine = Engine(WIN_MOVE, DRAW_DB)
        assert engine.solve("wf").semantics == "well_founded"
        assert engine.solve("wf-tb").semantics == "tie_breaking"
        assert engine.solve("fixpoints").semantics == "completion"

    def test_not_found_solution(self):
        solution = Engine("p :- not p.").solve("completion")
        assert not solution.found and not solution.total
        assert solution.run is None

    def test_tie_solution_records_policy_and_choices(self):
        from repro.semantics.choices import RandomChoice

        engine = Engine(WIN_MOVE, DRAW_DB)
        solution = engine.solve("tie_breaking", policy=RandomChoice(7))
        assert solution.policy == "RandomChoice(seed=7)"
        assert solution.free_choice_count == 1
        assert solution.run.policy == "RandomChoice(seed=7)"

    def test_enumerate_deterministic_semantics_yields_single_solution(self):
        engine = Engine(WIN_MOVE, DRAW_DB)
        solutions = list(engine.enumerate("well_founded"))
        assert len(solutions) == 1

    def test_enumerate_stable_models(self):
        engine = Engine("in(X) :- e(X), not out(X). out(X) :- e(X), not in(X).", "e(a). e(b).")
        models = {frozenset(map(str, s.true_atoms)) for s in engine.enumerate("stable")}
        assert len(models) == 4
        limited = list(engine.enumerate("stable", limit=2))
        assert len(limited) == 2


class TestGroundingSafety:
    """Engine-level defaults must not silently change semantics results."""

    def test_engine_default_does_not_override_pure_tie_breaking(self):
        # Pure tie-breaking may assign unfounded atoms true; relevant
        # grounding would prune them and change the outcome.
        engine = Engine("p :- p, not q. q :- q, not p.", grounding="relevant")
        solution = engine.solve("pure_tie_breaking")
        assert solution.grounding == "full"
        assert {str(a) for a in solution.true_atoms} == {"p"}

    def test_engine_default_does_not_override_completion(self):
        engine = Engine("p :- p.", grounding="relevant")
        models = [sorted(map(str, s.true_atoms)) for s in engine.enumerate("completion")]
        assert sorted(models) == [[], ["p"]]

    def test_explicit_grounding_still_wins_on_locked_specs(self):
        engine = Engine("p :- p, not q. q :- q, not p.", grounding="relevant")
        solution = engine.solve("pure_tie_breaking", grounding="relevant")
        assert solution.grounding == "relevant"

    def test_cached_grounding_refuses_smaller_max_instances(self):
        from repro.errors import GroundingError

        engine = Engine(WIN_MOVE, "move(1, 2). move(2, 3).")
        engine.solve("well_founded")  # grounds uncapped
        with pytest.raises(GroundingError, match="max_instances"):
            engine.ground_for("relevant", max_instances=1)

    def test_satisfied_cap_served_from_cache(self):
        engine = Engine(WIN_MOVE, "move(1, 2).")
        gp = engine.ground_for("relevant")
        assert engine.ground_for("relevant", max_instances=10_000) is gp


class TestSolutionCache:
    """Repeated solves (and the helpers on top) reuse the first computation."""

    def test_repeated_solve_is_cached(self):
        engine = Engine(WIN_MOVE, DRAW_DB)
        first = engine.solve("well_founded")
        assert engine.solve("well_founded") is first
        assert engine.stats()["solution_cache_hits"] == 1

    def test_queries_and_explain_share_one_solve(self):
        engine = Engine(WIN_MOVE, DRAW_DB)
        engine.query("win", semantics="tie_breaking")
        engine.query_many(["win(1)"], semantics="tie_breaking")
        engine.explain("win(1)", semantics="tie_breaking")
        engine.explain("win(2)", semantics="tie_breaking")
        assert engine.stats()["cached_solutions"] == 1
        assert engine.stats()["solution_cache_hits"] == 3

    def test_distinct_options_get_distinct_entries(self):
        from repro.semantics.choices import RandomChoice

        engine = Engine(WIN_MOVE, DRAW_DB)
        a = engine.solve("tie_breaking", policy=RandomChoice(1))
        b = engine.solve("tie_breaking", policy=RandomChoice(2))
        assert a is not b
        # Same self-describing policy spec -> cache hit.
        assert engine.solve("tie_breaking", policy=RandomChoice(1)) is a

    def test_identity_repr_options_are_not_cached(self):
        class OpaquePolicy:
            def choose_true_side(self, side0, side1):
                return 0

        engine = Engine(WIN_MOVE, DRAW_DB)
        a = engine.solve("tie_breaking", policy=OpaquePolicy())
        b = engine.solve("tie_breaking", policy=OpaquePolicy())
        assert a is not b
        assert engine.stats()["solution_cache_hits"] == 0


class TestOptionStrictness:
    def test_solve_rejects_limit(self):
        with pytest.raises(SemanticsError, match="limit"):
            Engine(WIN_MOVE).solve("well_founded", limit=5)

    def test_enumerate_limit_zero_yields_nothing_even_without_enumerator(self):
        assert list(Engine(WIN_MOVE, DRAW_DB).enumerate("well_founded", limit=0)) == []


class TestQueries:
    def test_query_many_shares_one_solve_per_call_site(self):
        engine = Engine(WIN_MOVE, "move(1, 2). move(2, 3).")
        values = engine.query_many(["win(1)", "win(2)", "win(3)"])
        assert [values[a] for a in sorted(values, key=str)] == [False, True, False]
        assert engine.ground_calls == 1

    def test_query_rows(self):
        engine = Engine(WIN_MOVE, "move(1, 2). move(2, 3).")
        result = engine.query("win")
        assert result.holds(1) is False and result.holds(2) is True
        assert result.total

    def test_query_unknown_predicate(self):
        with pytest.raises(SemanticsError, match="unknown predicate"):
            Engine(WIN_MOVE).query("nothere")


class TestAnalysisSurface:
    def test_analyze(self):
        classification, report = Engine(WIN_MOVE).analyze()
        assert not classification.is_structurally_total
        assert not report.structurally_total

    def test_witness_search(self):
        witness = Engine(WIN_MOVE).witness_search(max_constants=1)
        assert witness is not None

    def test_explain(self):
        tree = Engine(WIN_MOVE, DRAW_DB).explain("win(1)")
        assert str(tree.atom) == "win(1)"

    def test_from_files(self, tmp_path):
        prog = tmp_path / "p.dl"
        prog.write_text(WIN_MOVE)
        db = tmp_path / "d.dl"
        db.write_text(DRAW_DB)
        engine = Engine.from_files(prog, db)
        assert engine.solve("tie_breaking").total


class TestModuleLevelHelpers:
    def test_solve_helper(self):
        assert solve("tie_breaking", WIN_MOVE, DRAW_DB).total

    def test_solution_json_roundtrip(self):
        import json

        solution = solve("tie_breaking", WIN_MOVE, DRAW_DB)
        payload = json.loads(solution.to_json())
        assert payload["schema"] == "repro-solution/1"
        assert payload["semantics"] == "tie_breaking"
        assert payload["total"] is True
        assert payload["ties"]["free_choices"] == 1
        assert payload["counts"]["true"] == len(payload["model"]["true"])
