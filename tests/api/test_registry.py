"""Registry tests: specs, aliases, pluggability, and the deprecated shims."""

import warnings

import pytest

from repro.api import (
    Engine,
    SemanticsSpec,
    Solution,
    available_semantics,
    describe_registry,
    get_spec,
    register,
)
from repro.api.registry import _ALIASES, _REGISTRY
from repro.datalog.parser import parse_database, parse_program
from repro.errors import SemanticsError

WIN_MOVE = "win(X) :- move(X, Y), not win(Y)."


class TestRegistry:
    def test_core_semantics_present(self):
        names = available_semantics()
        for name in (
            "well_founded",
            "stable",
            "tie_breaking",
            "pure_tie_breaking",
            "fitting",
            "perfect",
            "stratified",
            "completion",
        ):
            assert name in names

    def test_aliases(self):
        assert get_spec("wf").name == "well_founded"
        assert get_spec("wf-tb").name == "tie_breaking"
        assert get_spec("pure-tb").name == "pure_tie_breaking"
        assert get_spec("fixpoints").name == "completion"
        assert get_spec("kripke-kleene").name == "fitting"

    def test_describe_registry_mentions_every_name(self):
        text = describe_registry()
        for name in available_semantics():
            assert name in text

    def test_unknown_semantics_error(self):
        with pytest.raises(SemanticsError, match="unknown semantics"):
            get_spec("unheard-of")

    def test_new_semantics_plugs_in_with_a_spec(self):
        def solver(req):
            return Solution.from_true_set("always_empty", frozenset(), run=frozenset())

        spec = SemanticsSpec(
            name="always_empty",
            summary="test-only: the empty model",
            solver=solver,
            default_grounding=None,
            aliases=("nothing",),
        )
        register(spec)
        try:
            solution = Engine(WIN_MOVE).solve("nothing")
            assert solution.semantics == "always_empty"
            assert solution.total and not solution.true_atoms
        finally:
            del _REGISTRY["always_empty"]
            del _ALIASES["always_empty"], _ALIASES["nothing"]

    def test_register_rejects_name_collisions(self):
        spec = SemanticsSpec(
            name="well_founded",
            summary="imposter",
            solver=lambda req: None,
            aliases=("stable",),  # collides with another spec's name
        )
        with pytest.raises(SemanticsError, match="already registered"):
            register(spec)


class TestDeprecatedShims:
    """Every legacy free function still works and warns exactly once per site."""

    @pytest.fixture()
    def draw(self):
        return parse_program(WIN_MOVE), parse_database("move(1, 2). move(2, 1).")

    def _call_expect_deprecation(self, fn, *args, **kwargs):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = fn(*args, **kwargs)
            if hasattr(result, "__next__"):  # drain lazy generators
                result = list(result)
        assert any(w.category is DeprecationWarning for w in caught), fn
        return result

    def test_model_shims_return_legacy_types(self, draw):
        program, database = draw
        from repro.ground.model import Interpretation
        from repro.semantics.fitting import fitting_model
        from repro.semantics.tie_breaking import TieBreakingRun, well_founded_tie_breaking
        from repro.semantics.well_founded import WellFoundedRun, well_founded_model

        run = self._call_expect_deprecation(well_founded_model, program, database)
        assert isinstance(run, WellFoundedRun) and not run.is_total
        tb = self._call_expect_deprecation(well_founded_tie_breaking, program, database)
        assert isinstance(tb, TieBreakingRun) and tb.is_total
        fit = self._call_expect_deprecation(fitting_model, program, database)
        assert isinstance(fit, Interpretation)

    def test_set_shims_return_frozensets(self, draw):
        program, database = draw
        from repro.semantics.completion import (
            count_fixpoints,
            enumerate_fixpoints,
            find_fixpoint,
            has_fixpoint,
        )
        from repro.semantics.stable import (
            enumerate_stable_models,
            find_stable_model,
            has_stable_model,
        )

        assert self._call_expect_deprecation(has_fixpoint, program, database)
        assert self._call_expect_deprecation(count_fixpoints, program, database) == 2
        fixpoint = self._call_expect_deprecation(find_fixpoint, program, database)
        assert isinstance(fixpoint, frozenset)
        assert len(self._call_expect_deprecation(enumerate_fixpoints, program, database)) == 2
        assert len(self._call_expect_deprecation(enumerate_stable_models, program, database)) == 2
        assert isinstance(
            self._call_expect_deprecation(find_stable_model, program, database), frozenset
        )
        assert self._call_expect_deprecation(has_stable_model, program, database)

    def test_enumerate_tie_breaking_shim(self, draw):
        program, database = draw
        from repro.semantics.tie_breaking import enumerate_tie_breaking_models

        runs = self._call_expect_deprecation(enumerate_tie_breaking_models, program, database)
        assert len(runs) == 2
        assert all(run.is_total for run in runs)

    def test_query_shim_keeps_cone_restriction(self):
        from repro.semantics.queries import query

        program = parse_program(f"{WIN_MOVE} junk :- not junk.")
        database = parse_database("move(1, 2).")
        result = self._call_expect_deprecation(query, program, database, "win")
        assert result.holds(1)
        assert result.total  # junk is outside win's support cone

    def test_stratified_perfect_modular_alternating_shims(self):
        from repro.semantics.alternating import alternating_fixpoint_model
        from repro.semantics.modular import modular_well_founded_model
        from repro.semantics.perfect import perfect_model
        from repro.semantics.stratified import stratified_model

        program = parse_program("t(X) :- e(X), not f(X).")
        database = parse_database("e(1).")
        trues = self._call_expect_deprecation(stratified_model, program, database)
        assert {str(a) for a in trues} == {"e(1)", "t(1)"}
        perfect = self._call_expect_deprecation(perfect_model, program, database)
        assert perfect.is_total
        modular = self._call_expect_deprecation(modular_well_founded_model, program, database)
        assert modular.is_total
        alternating = self._call_expect_deprecation(alternating_fixpoint_model, program, database)
        assert alternating.is_total


class TestSolutionSchema:
    def test_closed_world_solution_json(self):
        solution = Engine("t(X) :- e(X), not f(X).", "e(1).").solve("stratified")
        payload = solution.to_json_dict()
        assert payload["schema"] == "repro-solution/1"
        assert payload["model"]["false"] is None  # closed world
        assert payload["counts"]["false"] is None
        assert payload["model"]["true"] == ["e(1)", "t(1)"]
        assert payload["grounding"] is None  # stratified never grounds

    def test_materialized_solution_json_sorted_deterministically(self):
        engine = Engine(WIN_MOVE, "move(2, 1). move(1, 2).")
        payload = engine.solve("tie_breaking").to_json_dict()
        assert payload["model"]["true"] == sorted(payload["model"]["true"])
        assert payload["ties"]["policy"] == "FirstSideTrue()"
        assert payload["ties"]["choices"][0]["forced"] is False

    def test_not_found_json(self):
        payload = Engine("p :- not p.").solve("completion").to_json_dict()
        assert payload["found"] is False
        assert payload["model"]["true"] == []
