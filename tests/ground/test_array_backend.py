"""Differential tests for the array kernel backend and backend selection.

The NumPy-vectorized :class:`~repro.ground.array_state.ArrayGroundGraphState`
is a drop-in subclass of the pure-Python kernel; these tests pin it against
the scalar kernel (the differential oracle) at three granularities:

* **lockstep** — both states driven through the same close / unfounded /
  tie rounds with a full raw-buffer snapshot compared after every phase;
* **run level** — complete well-founded tie-breaking drives (the array
  side batched through ``select_ties``) must land on the identical model
  with the identical *set* of orientation decisions, and the committee
  family's round count must collapse from ~n to O(DAG depth);
* **facade level** — ``Engine(backend=...)`` and per-call overrides
  produce solutions indistinguishable from the python backend.

Everything array-specific is gated on numpy importing so the whole module
passes (skipping those tests) in the dependency-free environment; the
no-numpy behaviours themselves — :class:`BackendUnavailableError`,
``auto`` falling back — are tested by simulation (monkeypatching the
module-level ``np``) so they run in *both* environments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.errors import BackendUnavailableError, SemanticsError
from repro.ground import array_state as array_state_module
from repro.ground import backend as backend_module
from repro.ground.array_state import ArrayGroundGraphState, numpy_available
from repro.ground.backend import BACKENDS, make_state, resolve_backend
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState
from repro.semantics.tie_breaking import _select_tie
from repro.workloads import families
from repro.workloads.random_programs import random_propositional_program

from tests.properties.strategies import propositional_programs

HAS_NUMPY = numpy_available()
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

MAX_STEPS = 256

FAMILY_CASES = [
    ("win_move_line", families.win_move_line, 40, "relevant"),
    ("win_move_cycle", families.win_move_cycle, 41, "relevant"),
    ("unfounded_tower", families.unfounded_tower, 24, "relevant"),
    ("negation_tower", families.negation_tower, 16, "relevant"),
    ("tie_chain", families.tie_chain, 20, "relevant"),
    ("committee", families.committee, 16, "relevant"),
]


def _grounds():
    for name, generator, n, mode in FAMILY_CASES:
        program, db = generator(n)
        yield f"{name}({n})", ground(program, db, mode=mode)
    for seed in range(3):
        program = random_propositional_program(
            seed=seed, n_predicates=8, n_rules=14, negation_probability=0.45, edb_predicates=2
        )
        yield f"random-seed{seed}", ground(program, Database(), mode="full")


GROUND_CASES = list(_grounds())
GROUND_IDS = [name for name, _ in GROUND_CASES]


def _snapshot(state: GroundGraphState) -> tuple:
    """Raw-buffer view of one state, comparable across kernel backends."""
    return (
        bytes(state.status),
        bytes(state.atom_alive),
        bytes(state.rule_alive),
        list(state.rule_pending),
        list(state.atom_support),
        list(state.pos_live),
        sorted(state._live_atoms),
        sorted(state._live_rules),
        state.live_atom_count,
    )


def _orient_min(state: GroundGraphState, tie) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Orient one tie deterministically (min-atom side true); return sides."""
    sides = tie.side_of_atom()
    side_atoms: tuple[list[int], list[int]] = ([], [])
    for atom_id, side in sides.items():
        side_atoms[side].append(atom_id)
    if not side_atoms[0]:
        true_side = 0
    elif not side_atoms[1]:
        true_side = 1
    else:
        true_side = 0 if min(side_atoms[0]) <= min(side_atoms[1]) else 1
    state.assign_many(side_atoms[true_side], TRUE, ("tie", true_side))
    state.assign_many(side_atoms[1 - true_side], FALSE, ("tie", 1 - true_side))
    return (
        tuple(sorted(side_atoms[true_side])),
        tuple(sorted(side_atoms[1 - true_side])),
    )


def _drive_batched(state: GroundGraphState) -> tuple[list[int], frozenset, int]:
    """Well-founded tie-breaking via ``select_ties``; decisions as a set.

    Returns ``(final status, orientation decisions, tie rounds)``.  The
    decisions are backend-comparable: batched rounds may surface the
    independent ties in a different order, but the *set* of (true side,
    false side) pairs must match the sequential schedule exactly.
    """
    decisions = set()
    state.close()
    for _ in range(MAX_STEPS):
        state.falsify_unfounded(numbered=False)
        ties = state.select_ties()
        if not ties:
            return list(state.status), frozenset(decisions), state.tie_rounds
        for tie in ties:
            decisions.add(_orient_min(state, tie))
        state.close()
    pytest.fail("batched drive did not converge")


# ---------------------------------------------------------------------------
# Backend resolution (runs with and without numpy)
# ---------------------------------------------------------------------------


def _tiny_gp():
    program, db = families.win_move_line(3)
    return ground(program, db, mode="relevant")


class TestResolveBackend:
    def test_none_and_python_resolve_to_python(self):
        gp = _tiny_gp()
        assert resolve_backend(gp, None) == "python"
        assert resolve_backend(gp, "python") == "python"
        assert isinstance(make_state(gp, "python"), GroundGraphState)
        assert not isinstance(make_state(gp, "python"), ArrayGroundGraphState)

    def test_unknown_backend_raises(self):
        gp = _tiny_gp()
        with pytest.raises(SemanticsError, match="unknown kernel backend"):
            resolve_backend(gp, "gpu")
        with pytest.raises(SemanticsError, match="unknown kernel backend"):
            make_state(gp, "vectorized")

    def test_auto_stays_python_below_threshold(self):
        # A 3-node game is far below AUTO_ARRAY_THRESHOLD regardless of
        # numpy availability.
        state = make_state(_tiny_gp(), "auto")
        assert not isinstance(state, ArrayGroundGraphState)

    @needs_numpy
    def test_auto_threshold_boundary(self, monkeypatch):
        gp = _tiny_gp()
        n_nodes = gp.index.n_atoms + gp.index.n_rules
        monkeypatch.setattr(backend_module, "AUTO_ARRAY_THRESHOLD", n_nodes)
        assert resolve_backend(gp, "auto") == "array"
        assert isinstance(make_state(gp, "auto"), ArrayGroundGraphState)
        monkeypatch.setattr(backend_module, "AUTO_ARRAY_THRESHOLD", n_nodes + 1)
        assert resolve_backend(gp, "auto") == "python"

    @needs_numpy
    def test_array_resolves_to_array_state(self):
        gp = _tiny_gp()
        assert resolve_backend(gp, "array") == "array"
        assert isinstance(make_state(gp, "array"), ArrayGroundGraphState)


class TestWithoutNumpy:
    """No-numpy behaviour, simulated by clearing the module-level ``np``."""

    @pytest.fixture(autouse=True)
    def _no_numpy(self, monkeypatch):
        monkeypatch.setattr(array_state_module, "np", None)

    def test_numpy_available_reports_false(self):
        assert not numpy_available()

    def test_array_state_constructor_raises(self):
        with pytest.raises(BackendUnavailableError, match="requires numpy"):
            ArrayGroundGraphState(_tiny_gp())

    def test_backend_array_raises(self):
        gp = _tiny_gp()
        with pytest.raises(BackendUnavailableError, match="backend='array'"):
            resolve_backend(gp, "array")
        with pytest.raises(BackendUnavailableError):
            make_state(gp, "array")

    def test_backend_auto_silently_falls_back(self, monkeypatch):
        gp = _tiny_gp()
        monkeypatch.setattr(backend_module, "AUTO_ARRAY_THRESHOLD", 1)
        assert resolve_backend(gp, "auto") == "python"
        state = make_state(gp, "auto")
        assert type(state) is GroundGraphState

    def test_python_backend_unaffected(self):
        state = make_state(_tiny_gp(), "python")
        state.close()
        assert state.live_atom_count >= 0


# ---------------------------------------------------------------------------
# Differential: array kernel vs scalar kernel
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("name,gp", GROUND_CASES, ids=GROUND_IDS)
def test_lockstep_full_state(name, gp):
    """Both kernels, same rounds, identical raw buffers after each phase."""
    p = GroundGraphState(gp)
    a = ArrayGroundGraphState(gp)
    p.close()
    a.close()
    assert _snapshot(p) == _snapshot(a), "divergence after close"
    assert p.unfounded_atoms() == a.unfounded_atoms()
    p.falsify_unfounded(numbered=False)
    a.falsify_unfounded(numbered=False)
    p.close()
    a.close()
    assert _snapshot(p) == _snapshot(a), "divergence after unfounded cascade"
    assert {(tuple(c.atom_ids), c.is_tie) for c in p.bottom_components_live()} == {
        (tuple(c.atom_ids), c.is_tie) for c in a.bottom_components_live()
    }
    for _ in range(MAX_STEPS):
        tp = p.select_tie()
        ta = a.select_tie()
        if tp is None or ta is None:
            assert tp is None and ta is None
            break
        assert tuple(tp.atom_ids) == tuple(ta.atom_ids)
        assert tp.side_of_atom() == ta.side_of_atom()
        _orient_min(p, tp)
        _orient_min(a, ta)
        for s in (p, a):
            s.close()
            s.falsify_unfounded(numbered=False)
            s.close()
        assert _snapshot(p) == _snapshot(a), "divergence after tie round"
    assert p.interpretation().status == a.interpretation().status


@needs_numpy
@pytest.mark.parametrize("name,gp", GROUND_CASES, ids=GROUND_IDS)
def test_lockstep_with_and_without_sides_cache(name, gp):
    """The incremental (K, L) sides cache is invisible to the semantics.

    Drives the array kernel twice through identical rounds — once with
    the cache operating normally, once with ``_tie_sides`` cleared before
    every select (forcing fresh analyses throughout) — and requires the
    identical tie-decision sequence and identical raw buffers after every
    round.
    """
    cached = ArrayGroundGraphState(gp)
    uncached = ArrayGroundGraphState(gp)
    for s in (cached, uncached):
        s.close()
        s.falsify_unfounded(numbered=False)
        s.close()
    assert _snapshot(cached) == _snapshot(uncached)
    for _ in range(MAX_STEPS):
        uncached._tie_sides.clear()  # cache-off leg: every analysis fresh
        tc = cached.select_ties()
        tu = uncached.select_ties()
        assert [tuple(t.atom_ids) for t in tc] == [tuple(t.atom_ids) for t in tu]
        if not tc:
            break
        decisions_c = [_orient_min(cached, t) for t in tc]
        decisions_u = [_orient_min(uncached, t) for t in tu]
        assert decisions_c == decisions_u, "tie decisions diverge without the cache"
        for s in (cached, uncached):
            s.close()
            s.falsify_unfounded(numbered=False)
            s.close()
        assert _snapshot(cached) == _snapshot(uncached), "divergence after tie round"
    else:
        pytest.fail("drive did not converge")
    assert cached.interpretation().status == uncached.interpretation().status


@needs_numpy
@pytest.mark.parametrize("name,gp", GROUND_CASES, ids=GROUND_IDS)
def test_batched_rounds_match_sequential_schedule(name, gp):
    """Array ``select_ties`` batching ≡ the one-tie-per-round schedule."""
    py_status, py_decisions, py_rounds = _drive_batched(GroundGraphState(gp))
    ar_status, ar_decisions, ar_rounds = _drive_batched(ArrayGroundGraphState(gp))
    assert py_status == ar_status
    assert py_decisions == ar_decisions
    # Batching can only merge rounds, never add them.
    assert ar_rounds <= py_rounds


@needs_numpy
@settings(max_examples=30, deadline=None)
@given(program=propositional_programs())
def test_batched_rounds_match_on_random_programs(program):
    gp = ground(program, Database(), mode="full")
    py_status, py_decisions, _ = _drive_batched(GroundGraphState(gp))
    ar_status, ar_decisions, _ = _drive_batched(ArrayGroundGraphState(gp))
    assert py_status == ar_status
    assert py_decisions == ar_decisions


@needs_numpy
@pytest.mark.parametrize("n", [6, 12, 24])
def test_committee_rounds_collapse_to_dag_depth(n):
    """committee(n): n independent ties → one batched round (O(DAG depth)).

    The committee family's ties are pairwise independent (its choice
    DAG has depth 1), so the sequential schedule needs ~n rounds while
    ``select_ties`` resolves every tie in a single batch — the ISSUE's
    acceptance criterion for the batched-round tentpole.
    """
    program, db = families.committee(n)
    gp = ground(program, db, mode="relevant")
    _, py_decisions, py_rounds = _drive_batched(GroundGraphState(gp))
    _, ar_decisions, ar_rounds = _drive_batched(ArrayGroundGraphState(gp))
    assert py_rounds == n  # base select_ties keeps the sequential schedule
    assert ar_rounds == 1  # all n ties are bottom at once
    assert py_decisions == ar_decisions
    assert len(py_decisions) == n


@needs_numpy
def test_base_select_ties_is_single_tie_per_round():
    """The python kernel's select_ties stays the sequential schedule."""
    program, db = families.committee(5)
    state = GroundGraphState(ground(program, db, mode="relevant"))
    state.close()
    state.falsify_unfounded(numbered=False)
    ties = state.select_ties()
    assert len(ties) == 1
    assert tuple(ties[0].atom_ids) == tuple(_select_tie(state).atom_ids)


@needs_numpy
def test_array_select_ties_returns_disjoint_bottom_ties():
    program, db = families.committee(8)
    state = ArrayGroundGraphState(ground(program, db, mode="relevant"))
    state.close()
    state.falsify_unfounded(numbered=False)
    ties = state.select_ties()
    assert len(ties) == 8
    seen: set[int] = set()
    for tie in ties:
        atoms = set(tie.atom_ids)
        assert not atoms & seen, "batched ties must be pairwise disjoint"
        seen |= atoms
    # The schedule-free oracle's pick is among the batch.
    oracle = _select_tie(state)
    assert any(tuple(t.atom_ids) == tuple(oracle.atom_ids) for t in ties)


@needs_numpy
def test_scipy_fallback_paths_match(monkeypatch):
    """With scipy stubbed out, the numpy-only fallbacks stay identical."""
    monkeypatch.setattr(array_state_module, "_sp_csr", None)
    monkeypatch.setattr(array_state_module, "_sp_scc", None)
    monkeypatch.setattr(array_state_module, "_sp_dijkstra", None)
    for name, gp in GROUND_CASES[:4]:
        py_status, py_decisions, _ = _drive_batched(GroundGraphState(gp))
        ar_status, ar_decisions, _ = _drive_batched(ArrayGroundGraphState(gp))
        assert py_status == ar_status, name
        assert py_decisions == ar_decisions, name


@needs_numpy
def test_array_state_clone_is_independent():
    program, db = families.tie_chain(12)
    gp = ground(program, db, mode="relevant")
    state = ArrayGroundGraphState(gp)
    state.close()
    state.falsify_unfounded(numbered=False)
    state.select_ties()
    copy = state.clone()
    assert isinstance(copy, ArrayGroundGraphState)
    assert _snapshot(copy) == _snapshot(state)
    assert copy.tie_rounds == state.tie_rounds
    # Diverge the clone; the original must not move.
    before = _snapshot(state)
    tie = copy.select_tie()
    assert tie is not None
    _orient_min(copy, tie)
    copy.close()
    assert _snapshot(state) == before
    assert _snapshot(copy) != before


# ---------------------------------------------------------------------------
# Engine facade
# ---------------------------------------------------------------------------

WIN_MOVE = "win(X) :- move(X, Y), not win(Y)."
DRAW_DB = "move(1, 2). move(2, 1)."


class TestEngineBackend:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(SemanticsError, match="unknown backend"):
            Engine(WIN_MOVE, DRAW_DB, backend="fortran")

    def test_stats_report_backend(self):
        assert Engine(WIN_MOVE, DRAW_DB).stats()["backend"] == "python"
        assert Engine(WIN_MOVE, DRAW_DB, backend="auto").stats()["backend"] == "auto"

    @needs_numpy
    def test_array_engine_matches_python_engine(self):
        program, db = families.committee(6)
        results = {}
        for backend in ("python", "array"):
            solution = Engine(program, db, backend=backend).solve("tie_breaking")
            results[backend] = (
                solution.true_atoms,
                solution.total,
                frozenset(
                    (tuple(sorted(c.true_ids)), tuple(sorted(c.false_ids)))
                    for c in solution.choices
                ),
            )
        assert results["python"] == results["array"]

    @needs_numpy
    def test_per_call_backend_overrides_default(self):
        engine = Engine(WIN_MOVE, DRAW_DB)  # python default
        base = engine.solve("tie_breaking")
        overridden = engine.solve("tie_breaking", backend="array")
        assert overridden.true_atoms == base.true_atoms
        with pytest.raises(SemanticsError, match="unknown kernel backend"):
            engine.solve("tie_breaking", backend="simd")

    def test_backendless_semantics_ignore_engine_default(self):
        # fitting's spec has no backend option; the engine default must
        # not be injected into its options (that would be rejected).
        engine = Engine(WIN_MOVE, DRAW_DB, backend="auto")
        solution = engine.solve("fitting")
        assert solution.semantics == "fitting"
        # ... but passing it explicitly is still an option error.
        with pytest.raises(SemanticsError, match="does not accept option"):
            engine.solve("fitting", backend="python")

    def test_well_founded_accepts_backend_option(self):
        solution = Engine(WIN_MOVE, DRAW_DB, backend="python").solve("well_founded")
        assert solution.semantics == "well_founded"
        assert not solution.total  # the draw cycle stays undefined


# ---------------------------------------------------------------------------
# Satellite: select_tie lazy-discard edge cases under trail undo (python
# kernel).  The min-keyed schedule keeps stale heap entries around after
# assignments and undos; every resurfaced entry must be re-validated
# against live state, pinned here by the schedule-free oracle.
# ---------------------------------------------------------------------------


def _assert_schedule_matches_oracle(state: GroundGraphState) -> None:
    scheduled = state.select_tie()
    scanned = _select_tie(state)
    if scheduled is None:
        assert scanned is None
    else:
        assert scanned is not None
        assert sorted(scheduled.atom_ids) == sorted(scanned.atom_ids)
        assert scheduled.side_of_atom() == scanned.side_of_atom()


def test_select_tie_revalidates_after_undo_of_consumed_tie():
    """Undoing a tie orientation resurrects it as the scheduled minimum."""
    program, db = families.tie_chain(8)
    state = GroundGraphState(ground(program, db, mode="relevant"))
    state.trail_begin()
    state.close()
    state.falsify_unfounded(numbered=False)
    first = state.select_tie()
    assert first is not None
    first_atoms = tuple(first.atom_ids)
    mark = state.trail_mark()
    _orient_min(state, first)
    state.close()
    # The heap has discarded/consumed entries for the orientation above;
    # after undo the same component must be offered again.
    state.trail_undo(mark)
    again = state.select_tie()
    assert again is not None
    assert tuple(again.atom_ids) == first_atoms
    _assert_schedule_matches_oracle(state)


def test_select_tie_discards_stale_entries_after_partial_assignment():
    """Assigning a tie's atoms outside select-tie flow lazily discards it."""
    program, db = families.committee(4)
    state = GroundGraphState(ground(program, db, mode="relevant"))
    state.trail_begin()
    state.close()
    state.falsify_unfounded(numbered=False)
    tie = state.select_tie()
    assert tie is not None
    mark = state.trail_mark()
    # Orient the scheduled minimum *and* the next tie, then undo only to
    # the mark: the schedule must resurface exactly the oracle's pick,
    # not a stale heap head.
    _orient_min(state, tie)
    state.close()
    second = state.select_tie()
    assert second is not None
    _orient_min(state, second)
    state.close()
    state.trail_undo(mark)
    _assert_schedule_matches_oracle(state)


@settings(max_examples=25, deadline=None)
@given(
    program=propositional_programs(),
    plan=st.lists(st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=4),
)
def test_select_tie_schedule_survives_random_undo_cycles(program, plan):
    """Random orient/undo interleavings: schedule ≡ oracle at every stop.

    Each plan step orients up to three scheduled ties and then either
    keeps them or undoes back to the step's mark; after every step the
    min-keyed schedule must agree with the schedule-free scan.
    """
    gp = ground(program, Database(), mode="full")
    state = GroundGraphState(gp)
    state.trail_begin()
    state.close()
    state.falsify_unfounded(numbered=False)
    for breaks, keep in plan:
        mark = state.trail_mark()
        for _ in range(breaks):
            tie = state.select_tie()
            if tie is None:
                break
            _orient_min(state, tie)
            state.close()
            state.falsify_unfounded(numbered=False)
            state.close()
        if not keep:
            state.trail_undo(mark)
        _assert_schedule_matches_oracle(state)


def test_backends_tuple_is_stable():
    """The public backend names are part of the wire/CLI surface."""
    assert BACKENDS == ("python", "array", "auto")
