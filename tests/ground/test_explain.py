"""Tests for the provenance / explanation machinery."""


from repro.datalog.atoms import Atom, atom
from repro.datalog.parser import parse_database, parse_program
from repro.ground.explain import explain, format_explanation
from repro.semantics.tie_breaking import well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model


class TestExplainKinds:
    def test_delta_fact(self):
        run = well_founded_model(parse_program("p :- e."), parse_database("e."))
        explanation = explain(run.state, Atom("e"))
        assert explanation.kind == "delta" and explanation.value is True

    def test_edb_absent(self):
        run = well_founded_model(parse_program("p :- e."), parse_database("f."))
        explanation = explain(run.state, Atom("e"))
        assert explanation.kind == "edb-absent" and explanation.value is False

    def test_fired_with_premises(self):
        run = well_founded_model(
            parse_program("p :- e, not q."), parse_database("e.")
        )
        explanation = explain(run.state, Atom("p"))
        assert explanation.kind == "fired" and explanation.value is True
        # q heads no rule, so it is an EDB predicate absent from Δ
        premise_kinds = {p.kind for p in explanation.premises}
        assert premise_kinds == {"delta", "edb-absent"}
        assert "p :- e, ¬q." in explanation.rule

    def test_no_support(self):
        run = well_founded_model(parse_program("p :- q. q :- f."), grounding="full")
        explanation = explain(run.state, Atom("p"))
        assert explanation.kind == "no-support" and explanation.value is False
        assert explain(run.state, Atom("q")).kind == "no-support"

    def test_unfounded_with_iteration(self):
        run = well_founded_model(parse_program("p :- p."), grounding="full")
        explanation = explain(run.state, Atom("p"))
        assert explanation.kind == "unfounded"
        assert "iteration 1" in explanation.detail

    def test_tie_sides(self):
        run = well_founded_tie_breaking(parse_program("p :- not q. q :- not p."))
        p_side = explain(run.state, Atom("p"))
        q_side = explain(run.state, Atom("q"))
        assert {p_side.kind, q_side.kind} == {"tie"}
        assert p_side.value != q_side.value

    def test_stuck(self):
        run = well_founded_tie_breaking(parse_program("p :- not p."))
        explanation = explain(run.state, Atom("p"))
        assert explanation.kind == "stuck" and explanation.value is None

    def test_not_materialized(self):
        run = well_founded_model(
            parse_program("p :- p. q :- e."), parse_database("e."), grounding="relevant"
        )
        explanation = explain(run.state, Atom("p"))
        assert explanation.kind == "not-materialized" and explanation.value is False


class TestExplanationTrees:
    def test_chain_recursion(self):
        run = well_founded_model(
            parse_program("a :- b. b :- c. c :- e."), parse_database("e.")
        )
        tree = explain(run.state, Atom("a"))
        assert tree.kind == "fired"
        assert tree.premises[0].atom == Atom("b")
        assert tree.premises[0].premises[0].atom == Atom("c")
        assert "delta" in tree.leaf_kinds()

    def test_predicate_case(self):
        run = well_founded_model(
            parse_program("win(X) :- move(X, Y), not win(Y)."),
            parse_database("move(1, 2)."),
        )
        tree = explain(run.state, atom("win", 1))
        assert tree.value is True
        premise_atoms = {str(p.atom) for p in tree.premises}
        assert premise_atoms == {"move(1, 2)", "win(2)"}

    def test_depth_limit(self):
        source = " ".join(f"a{i} :- a{i+1}." for i in range(20)) + " a20 :- e."
        run = well_founded_model(parse_program(source), parse_database("e."))
        tree = explain(run.state, Atom("a0"), max_depth=3)
        # truncated: the deepest node has no premises even though fired
        node = tree
        while node.premises:
            node = node.premises[0]
        assert node.kind in ("fired", "delta")

    def test_self_recursive_rule_guard(self):
        """p :- p, e with p seeded in Δ: the premise loop must not recurse."""
        run = well_founded_model(
            parse_program("p :- p, e."), parse_database("e. p.")
        )
        tree = explain(run.state, Atom("p"))
        assert tree.kind == "delta"  # Δ wins as the recorded reason

    def test_format_renders_tree(self):
        run = well_founded_model(
            parse_program("a :- b, not c. b :- e."), parse_database("e.")
        )
        text = format_explanation(explain(run.state, Atom("a")))
        assert "a = true" in text
        assert "derived by" in text
        assert "\n  " in text  # indented premises
