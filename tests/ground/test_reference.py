"""Differential tests: naive reference machinery vs the production worklist."""

from hypothesis import HealthCheck, given, settings

from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.ground.reference import (
    NaiveGraph,
    naive_close,
    naive_greatest_unfounded_set,
    naive_well_founded,
)
from repro.ground.state import GroundGraphState
from repro.semantics.well_founded import well_founded_model

from tests.properties.strategies import propositional_cases, small_predicate_cases

CASES = [
    ("p :- q. q.", ""),
    ("p :- not q.", ""),
    ("p :- p.", ""),
    ("p :- p, not q. q :- q, not p.", ""),
    ("p :- not q. q :- not p. r :- p.", ""),
    ("a :- a. b :- not a. c :- b, not c.", ""),
    ("win(X) :- move(X, Y), not win(Y).", "move(1,2). move(2,3). move(3,1)."),
    ("p(a) :- not p(X), e(b).", "e(b)."),
]


def both_states(source, db_source):
    program = parse_program(source)
    db = parse_database(db_source) if db_source else Database()
    gp = ground(program, db, mode="full")
    fast = GroundGraphState(gp)
    fast.close()
    slow = NaiveGraph.initial(gp)
    naive_close(slow)
    return gp, fast, slow


class TestNaiveClose:
    def test_agrees_on_corpus(self):
        for source, db_source in CASES:
            gp, fast, slow = both_states(source, db_source)
            assert fast.status == slow.status, source
            assert set(i for i in range(gp.atom_count) if fast.atom_alive[i]) == slow.alive_atoms
            assert set(i for i in range(gp.rule_count) if fast.rule_alive[i]) == slow.alive_rules

    def test_unfounded_agrees_on_corpus(self):
        for source, db_source in CASES:
            gp, fast, slow = both_states(source, db_source)
            assert set(fast.unfounded_atoms()) == naive_greatest_unfounded_set(slow), source

    def test_well_founded_agrees_on_corpus(self):
        for source, db_source in CASES:
            program = parse_program(source)
            db = parse_database(db_source) if db_source else Database()
            gp = ground(program, db, mode="full")
            fast = well_founded_model(program, db, ground_program=gp)
            slow = naive_well_founded(gp)
            assert fast.model.status == slow.status, source


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=propositional_cases())
def test_naive_wf_equals_production_wf_random(case):
    program, db = case
    gp = ground(program, db, mode="full")
    fast = well_founded_model(program, db, ground_program=gp)
    slow = naive_well_founded(ground(program, db, mode="full"))
    assert fast.model.status == slow.status


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=small_predicate_cases())
def test_naive_wf_equals_production_wf_predicates(case):
    program, db = case
    fast = well_founded_model(program, db, grounding="full")
    slow = naive_well_founded(ground(program, db, mode="full"))
    assert fast.model.status == slow.status
