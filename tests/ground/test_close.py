"""Tests for close(M, G), unfounded sets, and bottom tie components."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.errors import CloseConflictError, SemanticsError
from repro.ground.model import FALSE, TRUE, UNDEF
from repro.ground.state import GroundGraphState


def state_for(source, db_source="", mode="full"):
    prog = parse_program(source)
    db = parse_database(db_source) if db_source else Database()
    gp = ground(prog, db, mode=mode)
    return gp, GroundGraphState(gp)


def value_of(gp, state, atom_):
    return state.status[gp.atoms.get(atom_)]


class TestCloseBasics:
    def test_fact_propagates(self):
        gp, st = state_for("p :- q. q.")
        st.close()
        assert value_of(gp, st, Atom("q")) == TRUE
        assert value_of(gp, st, Atom("p")) == TRUE

    def test_unsupported_atom_false(self):
        gp, st = state_for("p :- q.")
        st.close()
        assert value_of(gp, st, Atom("q")) == FALSE
        assert value_of(gp, st, Atom("p")) == FALSE

    def test_negation_fires_when_body_atom_false(self):
        gp, st = state_for("p :- not q.")
        st.close()
        assert value_of(gp, st, Atom("q")) == FALSE
        assert value_of(gp, st, Atom("p")) == TRUE

    def test_negation_blocks_when_body_atom_true(self):
        gp, st = state_for("p :- not q. q.")
        st.close()
        assert value_of(gp, st, Atom("p")) == FALSE

    def test_positive_loop_left_undefined_by_close_alone(self):
        gp, st = state_for("p :- p.")
        st.close()
        assert value_of(gp, st, Atom("p")) == UNDEF
        assert st.live_atom_count == 1

    def test_negative_loop_left_undefined(self):
        gp, st = state_for("p :- not p.")
        st.close()
        assert value_of(gp, st, Atom("p")) == UNDEF

    def test_edb_values_from_database(self):
        gp, st = state_for("p(X) :- e(X).", "e(1).")
        st.close()
        assert value_of(gp, st, atom("e", 1)) == TRUE
        assert value_of(gp, st, atom("p", 1)) == TRUE

    def test_initial_idb_facts_true_in_uniform_case(self):
        prog = parse_program("p :- q.")
        db = parse_database("p.")
        gp = ground(prog, db, mode="full")
        st = GroundGraphState(gp)
        st.close()
        assert st.status[gp.atoms.get(Atom("p"))] == TRUE
        assert st.status[gp.atoms.get(Atom("q"))] == FALSE

    def test_paper_program_1_total_via_close(self):
        """P(a) :- ¬P(x), E(b): with E = {b}, close alone resolves everything."""
        gp, st = state_for("p(a) :- not p(X), e(b).", "e(b).")
        st.close()
        # p(b) has no rule head p(b): false; then rule instance X=b fires: p(a) true;
        # instance X=a is killed by p(a) true.
        assert value_of(gp, st, atom("p", "b")) == FALSE
        assert value_of(gp, st, atom("p", "a")) == TRUE
        assert st.live_atom_count == 0


class TestAssignAndConflicts:
    def test_assign_then_close(self):
        gp, st = state_for("p :- q. q :- q.")
        st.close()
        st.assign(gp.atoms.get(Atom("q")), TRUE)
        st.close()
        assert value_of(gp, st, Atom("p")) == TRUE

    def test_conflicting_assign_raises(self):
        gp, st = state_for("p :- q. q :- q.")
        st.close()
        q = gp.atoms.get(Atom("q"))
        st.assign(q, TRUE)
        with pytest.raises(CloseConflictError):
            st.assign(q, FALSE)

    def test_same_value_assign_is_noop(self):
        gp, st = state_for("p :- q. q :- q.")
        st.close()
        q = gp.atoms.get(Atom("q"))
        st.assign(q, TRUE)
        st.assign(q, TRUE)

    def test_close_conflict_when_forced_head_is_false(self):
        # q :- p ; if we force q false and p true, close must derive q: conflict.
        gp, st = state_for("q :- p. p :- p.")
        st.close()
        st.assign(gp.atoms.get(Atom("q")), FALSE)
        st.close()
        st.assign(gp.atoms.get(Atom("p")), TRUE)
        with pytest.raises(CloseConflictError):
            st.close()

    def test_assign_requires_truth_value(self):
        gp, st = state_for("p :- q.")
        with pytest.raises(SemanticsError):
            st.assign(0, UNDEF)


class TestUnfounded:
    def test_positive_loop_is_unfounded(self):
        gp, st = state_for("p :- p.")
        st.close()
        unfounded = {gp.atoms.atom(i) for i in st.unfounded_atoms()}
        assert unfounded == {Atom("p")}

    def test_paper_example_unfounded_pair(self):
        """p :- p, ¬q and q :- q, ¬p: {p, q} is the largest unfounded set."""
        gp, st = state_for("p :- p, not q. q :- q, not p.")
        st.close()
        unfounded = {gp.atoms.atom(i) for i in st.unfounded_atoms()}
        assert unfounded == {Atom("p"), Atom("q")}

    def test_negative_cycle_not_unfounded(self):
        gp, st = state_for("p :- not q. q :- not p.")
        st.close()
        assert st.unfounded_atoms() == []

    def test_mixed(self):
        gp, st = state_for("a :- a. p :- not q. q :- not p.")
        st.close()
        unfounded = {gp.atoms.atom(i) for i in st.unfounded_atoms()}
        assert unfounded == {Atom("a")}

    def test_requires_closed_state(self):
        gp, st = state_for("p :- p.")
        with pytest.raises(SemanticsError):
            st.unfounded_atoms()


class TestBottomComponents:
    def test_negative_two_cycle_is_bottom_tie(self):
        gp, st = state_for("p :- not q. q :- not p.")
        st.close()
        bottoms = st.bottom_components_live()
        assert len(bottoms) == 1
        comp = bottoms[0]
        assert comp.is_tie
        sides = comp.side_of_atom()
        p, q = gp.atoms.get(Atom("p")), gp.atoms.get(Atom("q"))
        assert sides[p] != sides[q]

    def test_odd_component_is_not_tie(self):
        """The paper's 3-rule example: p1 :- ¬p2,¬p3; p2 :- ¬p1,¬p3; p3 :- ¬p1,¬p2."""
        gp, st = state_for(
            "p1 :- not p2, not p3. p2 :- not p1, not p3. p3 :- not p1, not p2."
        )
        st.close()
        bottoms = st.bottom_components_live()
        assert len(bottoms) == 1
        assert not bottoms[0].is_tie

    def test_upstream_component_not_bottom(self):
        gp, st = state_for("p :- not q. q :- not p. r :- p, not s. s :- not r.")
        st.close()
        bottoms = st.bottom_components_live()
        atoms = {gp.atoms.atom(i) for b in bottoms for i in b.atom_ids}
        assert atoms == {Atom("p"), Atom("q")}

    def test_positive_loop_is_trivial_tie(self):
        gp, st = state_for("p :- p.")
        st.close()
        comp = st.bottom_components_live()[0]
        assert comp.is_tie
        sides = comp.side_of_atom()
        assert set(sides.values()) == {0}  # all on one side: K or L empty

    def test_breaking_a_tie_resolves_graph(self):
        gp, st = state_for("p :- not q. q :- not p. r :- p.")
        st.close()
        comp = st.bottom_components_live()[0]
        sides = comp.side_of_atom()
        for a, side in sides.items():
            st.assign(a, TRUE if side == 0 else FALSE)
        st.close()
        assert st.live_atom_count == 0
        p, r = gp.atoms.get(Atom("p")), gp.atoms.get(Atom("r"))
        assert st.status[r] == st.status[p]
