"""Tests for the Interpretation result API."""


from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.ground.model import FALSE, TRUE, Interpretation
from repro.semantics.well_founded import well_founded_model


def model_for(source, db_source="", mode="full"):
    program = parse_program(source)
    db = parse_database(db_source) if db_source else Database()
    return well_founded_model(program, db, grounding=mode).model


class TestValueLookup:
    def test_materialized_values(self):
        model = model_for("p :- not q.")
        assert model.value(Atom("p")) is True
        assert model.value(Atom("q")) is False
        assert model[Atom("p")] is True

    def test_undefined(self):
        model = model_for("p :- not p.")
        assert model.value(Atom("p")) is None
        assert not model.holds(Atom("p"))

    def test_unmaterialized_edb_resolved_from_delta(self):
        model = model_for("p(X) :- e(X), not q(X). q(X) :- f(X).", "e(1).", mode="relevant")
        assert model.value(atom("e", 1)) is True
        assert model.value(atom("f", 1)) is False  # EDB absent from Δ

    def test_unmaterialized_idb_false(self):
        model = model_for("p :- p. q :- e.", "e.", mode="relevant")
        # p is outside U*: not materialized under relevant grounding
        assert model.value(Atom("p")) is False

    def test_counts_and_totality(self):
        model = model_for("p :- not q. q :- not p. r.")
        assert not model.is_total
        assert model.undefined_count == 2
        assert "total=False" in model.summary()


class TestViews:
    def test_true_false_undefined_partition(self):
        model = model_for("a. b :- not a. c :- not c.")
        atoms = {str(a) for a in model.true_atoms()}
        assert atoms == {"a"}
        assert {str(a) for a in model.false_atoms()} == {"b"}
        assert {str(a) for a in model.undefined_atoms()} == {"c"}

    def test_true_rows(self):
        model = model_for("p(X) :- e(X).", "e(1). e(2).")
        values = {row[0].value for row in model.true_rows("p")}
        assert values == {1, 2}

    def test_as_database_roundtrip(self):
        model = model_for("p(X) :- e(X).", "e(1).")
        out = model.as_database()
        assert out.contains("p", 1) and out.contains("e", 1)

    def test_true_set_frozen(self):
        model = model_for("a.")
        assert model.true_set() == frozenset({Atom("a")})


class TestAgreesWith:
    def test_same_model_agrees(self):
        a = model_for("p :- not q.")
        b = model_for("p :- not q.")
        assert a.agrees_with(b)

    def test_across_groundings(self):
        source, db = "p :- p. q :- e, not p.", "e."
        full = model_for(source, db, mode="full")
        relevant = model_for(source, db, mode="relevant")
        assert full.agrees_with(relevant)
        assert relevant.agrees_with(full)

    def test_disagreement_detected(self):
        a = model_for("p.")
        b = model_for("p :- q.")
        assert not a.agrees_with(b)


class TestManualConstruction:
    def test_status_tuple_contract(self):
        prog = parse_program("p :- q.")
        gp = ground(prog, Database(), mode="full")
        interp = Interpretation(gp, (TRUE, FALSE))
        values = {str(gp.atoms.atom(i)): s for i, s in enumerate(interp.status)}
        assert len(values) == 2
        assert interp.is_total
