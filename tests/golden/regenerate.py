#!/usr/bin/env python3
"""Regenerate the CLI golden JSON files after an intentional schema change.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

Review the diff before committing — these files pin the public JSON
contract of the ``repro-datalog`` CLI.
"""

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from test_cli_golden import CASES, GOLDEN_DIR, build_argv, scrub  # noqa: E402

from repro.cli import main  # noqa: E402


def regenerate() -> None:
    for name in sorted(CASES):
        with tempfile.TemporaryDirectory() as tmp:
            argv, expected_code = build_argv(name, Path(tmp))
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                code = main(argv)
            assert code == expected_code, (name, code, expected_code)
            payload = scrub(json.loads(buffer.getvalue()))
        target = GOLDEN_DIR / f"{name}.json"
        target.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {target}")


if __name__ == "__main__":
    regenerate()
