"""Lazy id-native :class:`Solution` views vs the eager decode oracle.

The PR-10 contract: a model-backed solution stores only the kernel's
status array; ``true_ids`` / ``false_ids`` / ``undefined_ids`` partition
it without decoding, and the ``*_atoms`` frozensets decode lazily on
first touch (booking wall clock into ``timings["result_s"]``).  Every
(family, semantics, backend) combination here cross-checks:

* the id partition against a direct status-array scan;
* the lazy atom views against an eager oracle decoded straight from the
  :class:`~repro.ground.model.Interpretation`;
* ``counts()`` / ``value()`` / ``query_many`` answers that must never
  require a set to exist;
* the streaming ``repro-solution/1`` encoder against the buffered
  ``json.dumps`` oracle, byte for byte, across indent × sort_keys;
* ``replace()`` carrying the decode caches without forcing new work.
"""

import json

import pytest

from repro.api.engine import Engine
from repro.errors import ReproError
from repro.ground.array_state import numpy_available
from repro.ground.model import FALSE, TRUE, UNDEF
from repro.io.json_io import (
    solution_to_jsonl_chunks,
    solution_to_obj,
)
from repro.workloads import families

FAMILY_CASES = [
    ("win_move_line", lambda: families.win_move_line(7)),
    ("win_move_cycle", lambda: families.win_move_cycle(8)),
    ("unfounded_tower", lambda: families.unfounded_tower(5)),
    ("tie_chain", lambda: families.tie_chain(4)),
    ("negation_tower", lambda: families.negation_tower(6)),
    ("layered_games", lambda: families.layered_games(3, 4)),
    ("committee", lambda: families.committee(5)),
    ("grounded_argumentation", lambda: families.grounded_argumentation(13)),
    ("adversarial_scc", lambda: families.adversarial_scc(8)),
]

SEMANTICS = [
    "alternating",
    "completion",
    "fitting",
    "modular",
    "perfect",
    "pure_tie_breaking",
    "stable",
    "stratified",
    "tie_breaking",
    "well_founded",
]

#: Semantics that accept a ``backend=`` option (the kernel-backed ones).
BACKEND_SEMANTICS = {"well_founded", "tie_breaking", "pure_tie_breaking"}

BACKENDS = ["python"] + (["array"] if numpy_available() else [])


def _solutions(name, make):
    """Every solvable (semantics, backend, solution) triple of one family."""
    out = []
    for semantics in SEMANTICS:
        for backend in BACKENDS if semantics in BACKEND_SEMANTICS else [None]:
            engine = Engine(*make())
            options = {} if backend is None else {"backend": backend}
            try:
                solution = engine.solve(semantics, **options)
            except ReproError:
                continue  # semantics does not apply to this family
            out.append((semantics, backend, engine, solution))
    return out


def _eager_oracle(model):
    """Decode the full partition straight from the Interpretation."""
    table = model.ground_program.atoms
    sets = {TRUE: set(), FALSE: set(), UNDEF: set()}
    for index, status in enumerate(model.status):
        sets[status].add(table.atom(index))
    return frozenset(sets[TRUE]), frozenset(sets[FALSE]), frozenset(sets[UNDEF])


@pytest.mark.parametrize("name,make", FAMILY_CASES, ids=[c[0] for c in FAMILY_CASES])
def test_lazy_views_match_eager_oracle(name, make):
    solved = _solutions(name, make)
    assert solved, name
    for semantics, backend, _engine, solution in solved:
        label = (name, semantics, backend)
        if solution.model is None:
            # Closed-world results are born eager; the id views are absent.
            assert solution.true_ids is None, label
            assert solution.false_ids is None, label
            assert solution.undefined_ids is None, label
            true, false, undefined = solution.counts()
            assert true == len(solution.true_atoms), label
            assert undefined == len(solution.undefined_atoms), label
            continue
        # Nothing read yet: the solve itself must not have decoded.
        assert solution.timings.get("result_s", 0.0) == 0.0, label
        status = solution.model.status
        expect_true = tuple(i for i, s in enumerate(status) if s == TRUE)
        expect_false = tuple(i for i, s in enumerate(status) if s == FALSE)
        expect_undef = tuple(i for i, s in enumerate(status) if s == UNDEF)
        assert solution.true_ids == expect_true, label
        assert solution.false_ids == expect_false, label
        assert solution.undefined_ids == expect_undef, label
        assert solution.counts() == (
            len(expect_true),
            len(expect_false),
            len(expect_undef),
        ), label
        oracle_true, oracle_false, oracle_undef = _eager_oracle(solution.model)
        # value() answers from the interned id before any set exists.
        for atom in list(oracle_true)[:5]:
            assert solution.value(atom) is True, label
        for atom in list(oracle_undef)[:5]:
            assert solution.value(atom) is None, label
        # First touch decodes; the decoded views must equal the oracle.
        assert solution.true_atoms == oracle_true, label
        assert solution.false_atoms == oracle_false, label
        assert solution.undefined_atoms == oracle_undef, label
        assert solution.timings["result_s"] > 0.0, label


@pytest.mark.parametrize("name,make", FAMILY_CASES, ids=[c[0] for c in FAMILY_CASES])
def test_streaming_encode_matches_buffered_bytes(name, make):
    for semantics, backend, _engine, solution in _solutions(name, make):
        label = (name, semantics, backend)
        # Warm both paths once: the first encodes book the one-time decode
        # into the live timings, so only the warm pair is byte-stable.
        "".join(solution_to_jsonl_chunks(solution))
        solution.to_json()
        for indent in (None, 2):
            for sort_keys in (False, True):
                streamed = "".join(
                    solution_to_jsonl_chunks(solution, indent=indent, sort_keys=sort_keys)
                )
                buffered = json.dumps(
                    solution_to_obj(solution), indent=indent, sort_keys=sort_keys
                )
                assert streamed == buffered, (*label, indent, sort_keys)
                parsed = json.loads(streamed)
                assert parsed["schema"] == "repro-solution/1", label
                assert parsed["counts"]["true"] == len(parsed["model"]["true"]), label


def test_query_many_answers_without_decoding():
    engine = Engine(*families.win_move_line(9))
    gp = engine.ground_for("relevant")
    table = gp.atoms
    atoms = [table.atom(i) for i in range(gp.atom_count)]
    answers = engine.query_many(atoms, semantics="well_founded")
    solution = engine.solve("well_founded")
    # The batch was answered from ids: no view was ever decoded.
    assert solution._true is None and solution._undefined is None
    assert solution.timings.get("result_s", 0.0) == 0.0
    oracle_true, oracle_false, oracle_undef = _eager_oracle(solution.model)
    for atom, value in answers.items():
        expect = True if atom in oracle_true else (None if atom in oracle_undef else False)
        assert value is expect, atom


def test_replace_carries_decode_caches():
    engine = Engine(*families.committee(5))
    solution = engine.solve("tie_breaking")
    # Replacing before any decode keeps the views undecoded.
    early = solution.replace(grounding="relevant")
    assert early._true is None and early._ids is None
    # After a decode, replace() reuses the cached objects outright.
    touched = solution.true_atoms
    booked = solution.timings["result_s"]
    later = solution.replace(iterations=99)
    assert later._true is solution._true
    assert later.true_atoms is touched
    assert later._ids is solution._ids
    assert later.timings["result_s"] == booked
    # The copy answers identically without booking any new decode time.
    assert later.counts() == solution.counts()
    assert solution.timings["result_s"] == booked


def test_enumerate_solutions_keep_lazy_views_consistent():
    engine = Engine(*families.committee(4))
    for solution in engine.enumerate("tie_breaking", limit=4):
        # Enumerated snapshots drop the live state but stay model-backed:
        # their lazy views must still decode against their own model.
        assert solution.state is None
        oracle_true, _false, oracle_undef = _eager_oracle(solution.model)
        assert solution.true_atoms == oracle_true
        assert solution.undefined_atoms == oracle_undef
        assert solution.total


def test_result_s_never_double_books():
    engine = Engine(*families.win_move_line(20))
    solution = engine.solve("well_founded")
    solution.true_atoms
    solution.false_atoms
    solution.undefined_atoms
    booked = solution.timings["result_s"]
    # Every further read is served from cache: nothing new is booked.
    solution.true_atoms
    solution.counts()
    solution._sorted_strings(0)
    first = solution.timings["result_s"]
    solution._sorted_strings(0)
    assert solution.timings["result_s"] == first
    assert first >= booked
