"""Round-trip properties of the ``repro-ground/1`` binary artifact.

Serialization is part of the evaluation pipeline now (compile once, serve
many — see :mod:`repro.io.artifact`), so it gets the same differential
treatment as the grounder and the kernel: on every workload family, on
random program distributions, and in every grounding mode,
``load(dump(gp))`` must yield a ground program that is

* **id-for-id identical** — same atoms, same rule instances, same dense
  ids (ids are part of the format, not an accident of the process);
* **semantically identical** — the reconstructed program and database
  produce the same U\\* upper-bound model as the originals;
* **kernel-indistinguishable** — a well-founded tie-breaking interpreter
  driven over the original and the loaded ground program in lockstep
  sees identical statuses, unfounded sets, and tie components at every
  step;
* **solver-indistinguishable** — the :class:`repro.api.Engine` reaches
  the same models (well-founded and tie-breaking) from both, and a
  warm-started engine (:meth:`Engine.from_artifact`) agrees with a cold
  one on every family.
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.datalog.database import Database
from repro.datalog.grounding import ground, universe_of
from repro.engine.seminaive import upper_bound_model
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState
from repro.io.artifact import dump_ground_program, load_artifact
from repro.workloads import families
from repro.workloads.random_programs import (
    random_call_consistent_program,
    random_propositional_program,
)

MAX_STEPS = 64

FAMILY_CASES = {
    "win_move_line": lambda: families.win_move_line(9),
    "win_move_cycle": lambda: families.win_move_cycle(8),
    "unfounded_tower": lambda: families.unfounded_tower(5),
    "tie_chain": lambda: families.tie_chain(4),
    "negation_tower": lambda: families.negation_tower(6),
    "layered_games": lambda: families.layered_games(3, 4),
    "committee": lambda: families.committee(5),
    "grounded_argumentation": lambda: families.grounded_argumentation(13),
    "adversarial_scc": lambda: families.adversarial_scc(8),
}

MODES = ["full", "relevant", "edb"]


def _round_trip(program, database, mode):
    gp = ground(program, database, mode=mode)
    art = load_artifact(dump_ground_program(gp))
    return gp, art.ground_program


def _assert_identical_ground_programs(gp, gp2):
    assert gp2.mode == gp.mode
    assert gp2.universe == gp.universe
    assert gp2.atom_count == gp.atom_count
    assert gp2.rule_count == gp.rule_count
    for i in range(gp.atom_count):
        assert gp2.atoms.atom(i) == gp.atoms.atom(i)
    for r1, r2 in zip(gp.rules, gp2.rules):
        assert (r1.head, r1.pos, r1.neg, r1.rule_index, r1.substitution) == (
            r2.head,
            r2.pos,
            r2.neg,
            r2.rule_index,
            r2.substitution,
        )


def _tie_sides(component):
    atom_sides = component.side_of_atom()
    side0 = frozenset(a for a, s in atom_sides.items() if s == 0)
    side1 = frozenset(a for a, s in atom_sides.items() if s == 1)
    return side0, side1


def _drive_lockstep(gp, gp2):
    """WF tie-breaking over both ground programs, asserting step parity."""
    state, state2 = GroundGraphState(gp), GroundGraphState(gp2)
    state.close()
    state2.close()
    for step in range(MAX_STEPS):
        assert bytes(state.status) == bytes(state2.status)
        assert state.live_atom_count == state2.live_atom_count
        unfounded = state.unfounded_atoms()
        assert set(unfounded) == set(state2.unfounded_atoms())
        if unfounded:
            for s in (state, state2):
                s.assign_many(unfounded, FALSE, ("unfounded", step))
                s.close()
            continue
        ties = [c for c in state.bottom_components_live() if c.is_tie]
        ties2 = [c for c in state2.bottom_components_live() if c.is_tie]
        assert {frozenset(c.atom_ids) for c in ties} == {frozenset(c.atom_ids) for c in ties2}
        if not ties:
            break
        tie = min(ties, key=lambda c: min(c.atom_ids))
        tie2 = next(c for c in ties2 if frozenset(c.atom_ids) == frozenset(tie.atom_ids))
        sides, sides2 = _tie_sides(tie), _tie_sides(tie2)
        assert set(sides) == set(sides2)
        side0, side1 = sides
        if not side0 or not side1:
            true_ids, false_ids = frozenset(), side0 or side1
        else:
            true_ids, false_ids = (side0, side1) if min(side0) < min(side1) else (side1, side0)
        for s in (state, state2):
            s.assign_many(sorted(true_ids), TRUE, ("tie", step))
            s.assign_many(sorted(false_ids), FALSE, ("tie", step))
            s.close()
    else:  # pragma: no cover - MAX_STEPS is far above any reachable depth
        pytest.fail("lockstep drive over the loaded artifact did not converge")
    assert bytes(state.status) == bytes(state2.status)


def _assert_same_upper_bound(program, database, program2, database2):
    universe = universe_of(program, database)
    original = upper_bound_model(program, database, universe=universe)
    loaded = upper_bound_model(program2, database2, universe=universe_of(program2, database2))
    preds = set(original.predicates()) | set(loaded.predicates())
    for pred in preds:
        assert original.rows(pred) == loaded.rows(pred), pred


def _assert_same_solutions(gp, gp2):
    cold = Engine(gp.program, gp.database, ground_program=gp)
    warm = Engine(gp2.program, gp2.database, ground_program=gp2)
    for semantics in ("well_founded", "tie_breaking"):
        a, b = cold.solve(semantics), warm.solve(semantics)
        assert a.total == b.total
        assert {str(x) for x in a.true_atoms} == {str(x) for x in b.true_atoms}
        assert {str(x) for x in a.undefined_atoms} == {str(x) for x in b.undefined_atoms}


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(FAMILY_CASES))
def test_families_round_trip(name, mode):
    program, database = FAMILY_CASES[name]()
    gp, gp2 = _round_trip(program, database, mode)
    _assert_identical_ground_programs(gp, gp2)
    assert gp2.program == program
    assert gp2.database == database
    _assert_same_upper_bound(program, database, gp2.program, gp2.database)
    _drive_lockstep(gp, gp2)
    _assert_same_solutions(gp, gp2)


@pytest.mark.parametrize("name", sorted(FAMILY_CASES))
def test_families_warm_engine_agrees_with_cold(name, tmp_path):
    program, database = FAMILY_CASES[name]()
    cold = Engine(program, database, grounding="relevant")
    path = cold.save_artifact(tmp_path / f"{name}.repro-ground")
    warm = Engine.from_artifact(path)
    assert warm.ground_calls == 0
    for semantics in ("well_founded", "tie_breaking"):
        a, b = cold.solve(semantics), warm.solve(semantics)
        assert {str(x) for x in a.true_atoms} == {str(x) for x in b.true_atoms}
        assert a.total == b.total


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", range(6))
def test_random_propositional_round_trip(seed, mode):
    program = random_propositional_program(
        n_predicates=8,
        n_rules=14,
        max_body=3,
        negation_probability=0.45,
        edb_predicates=2,
        seed=seed,
    )
    gp, gp2 = _round_trip(program, Database(), mode)
    _assert_identical_ground_programs(gp, gp2)
    _drive_lockstep(gp, gp2)
    _assert_same_solutions(gp, gp2)


@pytest.mark.parametrize("seed", range(4))
def test_random_call_consistent_round_trip(seed):
    program = random_call_consistent_program(
        n_predicates=7, n_rules=12, edb_predicates=2, seed=50 + seed
    )
    gp, gp2 = _round_trip(program, Database(), "relevant")
    _assert_identical_ground_programs(gp, gp2)
    _drive_lockstep(gp, gp2)
    _assert_same_solutions(gp, gp2)
