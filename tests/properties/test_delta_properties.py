"""Differential properties of the streaming update engine.

Every test drives one *live* :class:`~repro.api.Engine` through a trace
of ``insert_facts`` / ``retract_facts`` updates and compares it, after
**every** step, against the oracle that shares none of its machinery: a
fresh engine built from a copy of the mutated database.  Compared per
step and per deterministic policy:

* the model (true set and undefined set, decoded to atom strings — live
  and fresh groundings assign different dense ids);
* the tri-partition, via the two-way :meth:`Interpretation.agrees_with`
  (false atoms and closed-world defaults included);
* the tie trail — the decoded ``(made_true, made_false, forced)``
  sequence of every choice the interpreter committed.

``RandomChoice`` is excluded on purpose: the live overlay may visit a
Lemma-1 component from the opposite side as a fresh grounding (the K/L
labels swap), and only label-swap-invariant policies produce comparable
trails.  Enumeration is compared as a *set* of models for the same
reason — the side labels may swap the enumeration order, never the
reachable models.

Updates that fall outside the incremental envelope (a retraction that
shrinks the Herbrand universe, for example) are part of the contract:
the engine transparently re-grounds (``delta_rebuilds``), and the
differential must hold regardless of which path served each step.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.engine import Engine
from repro.datalog.atoms import Atom
from repro.ground.state import GroundGraphState
from repro.semantics.choices import FewestTrue, FirstSideTrue, MostTrue, SecondSideTrue
from repro.semantics.tie_breaking import _enumerate_tie_breaking_models, _run
from repro.workloads import families
from repro.workloads.random_programs import random_propositional_program

# Label-swap-invariant policies only (see module docstring).
POLICIES = [FirstSideTrue(), SecondSideTrue(), FewestTrue(), MostTrue()]

_ENUM_LIMIT = 64


def _solve_sig(gp, policy):
    """(true set, undef set, decoded trail, interpretation) of one solve."""
    state = GroundGraphState(gp)
    choices = _run(state, policy, well_founded=True)
    interp = state.interpretation()
    true = frozenset(str(a) for a in interp.true_atoms())
    undef = frozenset(str(a) for a in interp.undefined_atoms())
    trail = tuple(
        (
            frozenset(str(a) for a in c.made_true),
            frozenset(str(a) for a in c.made_false),
            c.forced,
        )
        for c in choices
    )
    return true, undef, trail, interp


def _enum_model_set(gp):
    """The set of reachable tie-breaking models, decoded."""
    return frozenset(
        frozenset(str(a) for a in run.model.true_set())
        for run in _enumerate_tie_breaking_models(
            None, None, ground_program=gp, limit=_ENUM_LIMIT
        )
    )


def _fresh_oracle(live: Engine, mode) -> Engine:
    """A fresh engine over a copy of the live engine's mutated database."""
    return Engine(live.program, live.database.copy(), grounding=mode)


def _assert_step_equivalent(live: Engine, mode, label: str, enumerate_too=False):
    """Live engine ≡ fresh re-ground, models + tri-partition + trails."""
    fresh = _fresh_oracle(live, mode)
    live_gp = live.ground_for(mode)
    fresh_gp = fresh.ground_for(mode)
    for policy in POLICIES:
        lt, lu, ltrail, lm = _solve_sig(live_gp, policy)
        ft, fu, ftrail, fm = _solve_sig(fresh_gp, policy)
        assert lt == ft, (
            f"{label} {policy!r}: true-set mismatch\n"
            f"live-only={sorted(lt - ft)}\nfresh-only={sorted(ft - lt)}"
        )
        assert lu == fu, f"{label} {policy!r}: undefined-set mismatch"
        assert ltrail == ftrail, f"{label} {policy!r}: tie-trail mismatch"
        assert lm.agrees_with(fm), f"{label} {policy!r}: tri-partition mismatch"
    # The public facade must agree too (solution cache invalidation,
    # delta bookkeeping): same model through Engine.solve on both sides.
    live_true = frozenset(str(a) for a in live.solve("tie_breaking").true_atoms)
    fresh_true = frozenset(str(a) for a in fresh.solve("tie_breaking").true_atoms)
    assert live_true == fresh_true, f"{label}: Engine.solve mismatch"
    if enumerate_too:
        assert _enum_model_set(live_gp) == _enum_model_set(fresh_gp), (
            f"{label}: enumerated model sets differ"
        )


def _candidate_facts(program, database, rng, extra=20):
    """EDB rows present at start plus random rows over known constants."""
    base = [(a.predicate, tuple(a.args)) for a in database.atoms()]
    candidates = list(dict.fromkeys(base))
    constants = sorted(program.constants | database.constants(), key=str)
    arity = {p: len(row) for p, row in base}
    predicates = sorted(arity)
    if predicates and constants:
        for _ in range(extra):
            pred = rng.choice(predicates)
            row = tuple(rng.choice(constants) for _ in range(arity[pred]))
            if (pred, row) not in candidates:
                candidates.append((pred, row))
    return candidates


def _run_trace(program, database, *, mode, steps, seed, enum_every=10):
    """Drive a mixed insert/retract trace, asserting after every step."""
    rng = random.Random(seed)
    engine = Engine(program, database.copy(), grounding=mode)
    candidates = _candidate_facts(program, database, rng)
    assert candidates, "trace needs at least one streamable fact"
    present = {c for c in candidates if database.contains_atom(Atom(c[0], c[1]))}
    for step in range(steps):
        inserts, retracts = [], []
        # Distinct facts per step: the engine applies retractions before
        # insertions, so toggling one fact twice in a step would not
        # commute with this bookkeeping.
        for fact in rng.sample(candidates, k=rng.randint(1, min(3, len(candidates)))):
            if fact in present:
                present.discard(fact)
                retracts.append(Atom(fact[0], fact[1]))
            else:
                present.add(fact)
                inserts.append(Atom(fact[0], fact[1]))
        retracted = engine.retract_facts(*retracts)
        inserted = engine.insert_facts(*inserts)
        assert {str(a) for a in retracted} == {str(a) for a in retracts}
        assert {str(a) for a in inserted} == {str(a) for a in inserts}
        _assert_step_equivalent(
            engine,
            mode,
            f"step {step}",
            enumerate_too=(step % enum_every == 0),
        )
    # Empty insert/retract calls are no-ops and uncounted; every step
    # issues at least one non-empty update.  Deltas are absorbed lazily,
    # so the per-grounding counters trail the call counter.
    assert steps <= engine.update_calls <= 2 * steps
    assert 0 < engine.delta_applied + engine.delta_rebuilds <= engine.update_calls
    return engine


TRACE_CASES = [
    ("win_move_line", lambda: families.win_move_line(7), "relevant"),
    ("win_move_cycle", lambda: families.win_move_cycle(8), "relevant"),
    ("committee", lambda: families.committee(5), "relevant"),
    ("layered_games", lambda: families.layered_games(3, 3), "relevant"),
    ("negation_tower", lambda: families.negation_tower(5), "relevant"),
    ("grounded_argumentation", lambda: families.grounded_argumentation(13), "relevant"),
    ("adversarial_scc", lambda: families.adversarial_scc(8), "relevant"),
    ("win_move_line-full", lambda: families.win_move_line(7), "full"),
    ("win_move_cycle-full", lambda: families.win_move_cycle(8), "full"),
]


def test_long_mixed_trace_matches_fresh_engine_at_every_step():
    """The acceptance trace: 60 mixed steps, every step differential."""
    program, database = families.win_move_line(7)
    _run_trace(program, database, mode="relevant", steps=60, seed=7)


@pytest.mark.parametrize(
    "name,case,mode", TRACE_CASES, ids=[name for name, _, _ in TRACE_CASES]
)
def test_mixed_trace_matches_fresh_engine(name, case, mode):
    program, database = case()
    _run_trace(program, database, mode=mode, steps=15, seed=11, enum_every=5)


@pytest.mark.parametrize(
    "name,case,mode", TRACE_CASES, ids=[name for name, _, _ in TRACE_CASES]
)
def test_retract_then_reinsert_round_trips(name, case, mode):
    """Retracting facts and reinserting them restores the exact model."""
    program, database = case()
    engine = Engine(program, database.copy(), grounding=mode)
    pristine = Engine(program, database.copy(), grounding=mode)
    before = {
        str(policy): _solve_sig(engine.ground_for(mode), policy)[:3]
        for policy in POLICIES
    }
    facts = sorted(database.atoms(), key=str)[:5]
    assert facts, "round-trip needs EDB facts"
    retracted = engine.retract_facts(*facts)
    assert {str(a) for a in retracted} == {str(a) for a in facts}
    _assert_step_equivalent(engine, mode, f"{name} after retract")
    inserted = engine.insert_facts(*facts)
    assert {str(a) for a in inserted} == {str(a) for a in facts}
    after = {
        str(policy): _solve_sig(engine.ground_for(mode), policy)[:3]
        for policy in POLICIES
    }
    assert before == after, f"{name}: round-trip did not restore the model"
    # The round-tripped engine still matches a never-touched engine.
    pristine_true = frozenset(str(a) for a in pristine.solve("tie_breaking").true_atoms)
    live_true = frozenset(str(a) for a in engine.solve("tie_breaking").true_atoms)
    assert live_true == pristine_true
    # Re-inserting an already-present fact is a no-op, not an error.
    assert engine.insert_facts(*facts) == []


@pytest.mark.parametrize(
    "name,case,mode",
    TRACE_CASES[:3],
    ids=[name for name, _, _ in TRACE_CASES[:3]],
)
def test_updates_interleaved_with_enumeration(name, case, mode):
    """Enumeration stays differential while updates stream in between."""
    program, database = case()
    rng = random.Random(23)
    engine = Engine(program, database.copy(), grounding=mode)
    candidates = _candidate_facts(program, database, rng)
    present = {c for c in candidates if database.contains_atom(Atom(c[0], c[1]))}
    for step in range(8):
        fact = rng.choice(candidates)
        atom = Atom(fact[0], fact[1])
        if fact in present:
            present.discard(fact)
            engine.retract_facts(atom)
        else:
            present.add(fact)
            engine.insert_facts(atom)
        fresh = _fresh_oracle(engine, mode)
        assert _enum_model_set(engine.ground_for(mode)) == _enum_model_set(
            fresh.ground_for(mode)
        ), f"{name} step {step}: enumerated model sets differ"


# Random-program distributions (matching the kernel property suite); the
# first `edb_predicates` 0-ary predicates are the streamable facts.
RANDOM_DISTRIBUTIONS = [
    dict(n_predicates=8, n_rules=14, max_body=3, negation_probability=0.45, edb_predicates=2),
    dict(n_predicates=7, n_rules=12, negation_probability=0.35, edb_predicates=2),
    dict(n_predicates=6, n_rules=10, negation_probability=0.6, edb_predicates=1),
]


@settings(max_examples=25, deadline=None)
@given(
    dist=st.integers(min_value=0, max_value=len(RANDOM_DISTRIBUTIONS) - 1),
    program_seed=st.integers(min_value=0, max_value=10_000),
    trace_seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(["full", "relevant"]),
    steps=st.integers(min_value=3, max_value=8),
)
def test_random_program_traces_match_fresh_engine(
    dist, program_seed, trace_seed, mode, steps
):
    """Hypothesis traces over the library's random-program distributions."""
    spec = RANDOM_DISTRIBUTIONS[dist]
    program = random_propositional_program(seed=program_seed, **spec)
    edb = sorted(program.edb_predicates)[: spec["edb_predicates"]]
    candidates = [Atom(p) for p in sorted(edb)]
    if not candidates:
        return
    rng = random.Random(trace_seed)
    from repro.datalog.database import Database

    engine = Engine(program, Database(), grounding=mode)
    present: set[str] = set()
    for step in range(steps):
        atom = rng.choice(candidates)
        if str(atom) in present:
            present.discard(str(atom))
            engine.retract_facts(atom)
        else:
            present.add(str(atom))
            engine.insert_facts(atom)
        _assert_step_equivalent(engine, mode, f"dist{dist} step {step}")


@settings(max_examples=15, deadline=None)
@given(
    case=st.integers(min_value=0, max_value=len(TRACE_CASES) - 1),
    seed=st.integers(min_value=0, max_value=10_000),
    steps=st.integers(min_value=3, max_value=8),
)
def test_hypothesis_family_traces_match_fresh_engine(case, seed, steps):
    """Hypothesis-chosen traces over the named workload families."""
    name, build, mode = TRACE_CASES[case]
    program, database = build()
    _run_trace(program, database, mode=mode, steps=steps, seed=seed, enum_every=4)


def _streamed_gp():
    """A live grounding whose CSR actually grew past its initial arrays.

    Three guaranteed-incremental updates: a novel fact over existing
    constants (appends atoms and instances), then a ghost/revive pair.
    """
    program, database = families.win_move_cycle(8)
    engine = Engine(program, database.copy(), grounding="relevant")
    engine.ground_for("relevant")  # materialize before streaming
    c = sorted(program.constants | database.constants(), key=str)
    novel = Atom("move", (c[0], c[2]))
    safe = Atom("move", (c[1], c[2]))
    assert engine.insert_facts(novel) == [novel]
    assert engine.retract_facts(safe) == [safe]
    assert engine.insert_facts(safe) == [safe]
    assert engine.delta_applied == 3 and engine.delta_rebuilds == 0
    return engine.ground_for("relevant")


def test_full_recompute_queries_tolerate_grown_csr():
    """The escape-hatch queries pin the incremental paths on a streamed
    index, along a whole solve trajectory (cascade steps and ties)."""
    from repro.ground.model import FALSE, TRUE

    gp = _streamed_gp()
    assert gp.index.atom_order is not None  # the overlay is in play
    state = GroundGraphState(gp)
    state.close()
    for _ in range(200):
        assert state.unfounded_atoms() == state.unfounded_atoms(full_recompute=True)
        live = {
            (frozenset(comp.atom_ids), comp.is_tie)
            for comp in state.bottom_components_live()
        }
        full = {
            (frozenset(comp.atom_ids), comp.is_tie)
            for comp in state.bottom_components_live(full_recompute=True)
        }
        assert live == full
        unfounded = state.unfounded_atoms()
        if unfounded:
            state.assign_many(unfounded, FALSE, ("unfounded", 1))
            state.close()
            continue
        tie = state.select_tie()
        if tie is None:
            return
        sides = tie.side_of_atom()
        state.assign_many([a for a, s in sides.items() if s == 0], TRUE, ("tie", 0))
        state.assign_many([a for a, s in sides.items() if s == 1], FALSE, ("tie", 1))
        state.close()
    pytest.fail("solve trajectory did not converge")
