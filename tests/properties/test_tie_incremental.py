"""Differential properties of the incremental Lemma-1 (K, L) machinery.

Three layers, all lockstep against a fresh-analysis oracle:

* **structure level** — a :class:`repro.graphs.ties.TieSides` absorbing a
  random deletion trace must, after *every* step, agree with a fresh
  :meth:`TieSides.analyze` of the surviving graph: same tie verdict, and
  on ties the same partition through side relabelling.  When a deletion
  splits the component the mutator reports it (``False``) and the caller
  falls back to fresh analyses per piece — exactly the kernel's
  ``_refine_scc`` contract.
* **kernel level** — a full well-founded tie-breaking drive on each bench
  family where, before every tie round, the incremental path (cached
  condensation + sides cache) is compared against a
  ``full_recompute=True`` clone, on both kernel backends.
* **trail level** — undoing a prefix of a trailed run must restore the
  exact pre-round fingerprint (including the served tie partitions), and
  redoing from there must land on the original final model.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.workloads import families
from repro.bench.runner import _verify_tie_sides
from repro.datalog.grounding import ground
from repro.graphs.ties import TieSides
from repro.ground.array_state import ArrayGroundGraphState, numpy_available
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState

from tests.properties.strategies import signed_tie_components, tie_deletion_traces

MAX_ROUNDS = 4000

FAMILY_CASES = [
    ("win_move_cycle", lambda n: families.win_move_cycle(n), 12, "relevant"),
    ("tie_chain", families.tie_chain, 14, "relevant"),
    ("committee", families.committee, 9, "relevant"),
    ("grounded_argumentation", families.grounded_argumentation, 17, "relevant"),
    ("adversarial_scc", families.adversarial_scc, 10, "relevant"),
]

BACKENDS = [("python", GroundGraphState)]
if numpy_available():
    BACKENDS.append(("array", ArrayGroundGraphState))


# -- structure level ------------------------------------------------------


def _successors_from(arcs):
    """A ``successors`` callable over a signed arc list."""
    out: dict[int, list[tuple[int, bool]]] = {}
    for u, v, positive in arcs:
        out.setdefault(u, []).append((v, positive))
    return lambda node: out.get(node, ())


def _normalized(side: dict[int, int], nodes) -> dict[int, int]:
    """Side labels flipped so the smallest node gets side 0."""
    flip = side[min(nodes)]
    return {n: side[n] ^ flip for n in nodes}


def _weak_pieces(nodes, arcs) -> list[set[int]]:
    """Weakly connected components of the surviving graph."""
    neighbours: dict[int, set[int]] = {n: set() for n in nodes}
    for u, v, _positive in arcs:
        neighbours[u].add(v)
        neighbours[v].add(u)
    pieces = []
    seen: set[int] = set()
    for start in nodes:
        if start in seen:
            continue
        piece = {start}
        queue = [start]
        while queue:
            u = queue.pop()
            for v in neighbours[u]:
                if v not in piece:
                    piece.add(v)
                    queue.append(v)
        seen |= piece
        pieces.append(piece)
    return pieces


def _check_self_consistent(sides: TieSides, live_arcs) -> None:
    """Structural invariants: labels cover the members, and the violation
    set is exactly the set of live arcs inconsistent under the labels."""
    assert set(sides.side) == sides.members
    expected_violations = set()
    for arc in live_arcs:
        u, v, positive = arc
        consistent = (
            sides.side[u] == sides.side[v]
            if positive
            else sides.side[u] != sides.side[v]
        )
        if not consistent:
            expected_violations.add(arc)
    assert sides.violations == expected_violations


def _check_matches_fresh(sides: TieSides, live_nodes, live_arcs) -> None:
    """The incremental structure ≡ a fresh analysis of the live graph."""
    component = sorted(live_nodes)
    fresh = TieSides.analyze(component, _successors_from(live_arcs))
    assert sides.is_tie == fresh.is_tie
    if sides.is_tie:
        assert _normalized(sides.side, live_nodes) == _normalized(
            fresh.side, live_nodes
        )


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=signed_tie_components())
def test_analyze_matches_planted_partition(case):
    """On an unflipped component the analysis recovers the planted sides;
    flipping any arc makes it a non-tie (every arc lies on a cycle)."""
    nodes, arcs, planted, n_flipped = case
    sides = TieSides.analyze(sorted(nodes), _successors_from(arcs))
    _check_self_consistent(sides, arcs)
    if n_flipped == 0:
        assert sides.is_tie
        assert _normalized(sides.side, nodes) == _normalized(planted, nodes)
    elif n_flipped == 1:
        # One flipped arc lies on some cycle (strong connectivity), and
        # that cycle's negative parity became odd.  Two or more flips can
        # cancel along a shared cycle, so only the single-flip case has a
        # guaranteed verdict.
        assert not sides.is_tie


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=tie_deletion_traces())
def test_deletion_trace_matches_fresh_analysis(case):
    """After every deletion step: incremental ≡ fresh, split ⟺ reported."""
    nodes, arcs, steps = case
    live_nodes = set(nodes)
    live_arcs = list(arcs)
    sides = TieSides.analyze(sorted(nodes), _successors_from(arcs))
    for kind, payload in steps:
        if kind == "edges":
            payload = [a for a in payload if a in live_arcs]
            if not payload:
                continue
            gone = set(payload)
            live_arcs = [a for a in live_arcs if a not in gone]
            intact = sides.delete_edges(payload)
        else:
            payload = [n for n in payload if n in live_nodes]
            if not payload:
                continue
            dead = set(payload)
            live_nodes -= dead
            live_arcs = [
                a for a in live_arcs if a[0] not in dead and a[1] not in dead
            ]
            intact = sides.delete_nodes(payload)
        if not live_nodes:
            # Everything died: the structure is empty, not split.
            assert intact
            assert not sides.members and not sides.side and not sides.violations
            return
        pieces = _weak_pieces(sorted(live_nodes), live_arcs)
        assert intact == (len(pieces) == 1)
        if not intact:
            # Split: the incremental structure is stale by contract; the
            # caller re-analyzes per piece (the kernel's refine fallback).
            for piece in pieces:
                piece_arcs = [
                    a for a in live_arcs if a[0] in piece and a[1] in piece
                ]
                fresh = TieSides.analyze(sorted(piece), _successors_from(piece_arcs))
                _check_self_consistent(fresh, piece_arcs)
            return
        _check_self_consistent(sides, live_arcs)
        _check_matches_fresh(sides, live_nodes, live_arcs)


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=signed_tie_components(flipped=False))
def test_restricted_partition_stays_valid(case):
    """A clean partition restricted to any node subset stays clean — the
    monotonicity fact ``_refine_scc`` relies on when it derives a fresh
    piece's sides from its parent component."""
    nodes, arcs, _planted, _n_flipped = case
    sides = TieSides.analyze(sorted(nodes), _successors_from(arcs))
    assert sides.is_tie
    keep = {n for n in nodes if n % 2 == 0} or set(nodes)
    restricted = sides.restricted(keep)
    kept_arcs = [a for a in arcs if a[0] in keep and a[1] in keep]
    for u, v, positive in kept_arcs:
        if positive:
            assert restricted.side[u] == restricted.side[v]
        else:
            assert restricted.side[u] != restricted.side[v]
    with pytest.raises(ValueError):
        restricted.delete_edges(kept_arcs[:1])


# -- kernel level ---------------------------------------------------------


@pytest.mark.parametrize("backend,state_cls", BACKENDS, ids=[b for b, _ in BACKENDS])
@pytest.mark.parametrize(
    "name,generator,n,mode", FAMILY_CASES, ids=[c[0] for c in FAMILY_CASES]
)
def test_kernel_lockstep_vs_full_recompute(name, generator, n, mode, backend, state_cls):
    """Per-round incremental sides ≡ the full_recompute oracle, both
    backends (the same differential the bench runs on every record)."""
    program, db = generator(n)
    gp = ground(program, db, mode=mode)
    checked = _verify_tie_sides(f"{name}({n})", gp, state_cls)
    assert checked > 0


# -- trail level ----------------------------------------------------------


def _fingerprint(state) -> tuple:
    """Observable state: assignments, live set, and the served tie views."""
    ties = []
    for component in state.bottom_components_live():
        entry = (tuple(component.atom_ids), component.is_tie)
        if component.is_tie:
            sides = component.side_of_atom()
            flip = sides[min(sides)] if sides else 0
            entry += (tuple(sorted((a, s ^ flip) for a, s in sides.items())),)
        ties.append(entry)
    return (
        tuple(state.status),
        frozenset(state.live_atom_ids()),
        tuple(sorted(ties)),
    )


def _drive_round(state) -> bool:
    """One wf-tb round; returns False when the run is complete."""
    state.falsify_unfounded(numbered=False)
    ties = state.select_ties()
    if not ties:
        return False
    for tie in ties:
        sides = tie.side_of_atom()
        side_atoms: tuple[list[int], list[int]] = ([], [])
        for atom_id, side in sides.items():
            side_atoms[side].append(atom_id)
        if not side_atoms[0]:
            true_side = 0
        elif not side_atoms[1]:
            true_side = 1
        else:
            true_side = 0 if min(side_atoms[0]) <= min(side_atoms[1]) else 1
        state.assign_many(sorted(side_atoms[true_side]), TRUE, ("tie", true_side))
        state.assign_many(
            sorted(side_atoms[1 - true_side]), FALSE, ("tie", 1 - true_side)
        )
    state.close()
    return True


@pytest.mark.parametrize("backend,state_cls", BACKENDS, ids=[b for b, _ in BACKENDS])
@pytest.mark.parametrize(
    "name,generator,n,mode", FAMILY_CASES, ids=[c[0] for c in FAMILY_CASES]
)
def test_trail_undo_replay_preserves_tie_state(name, generator, n, mode, backend, state_cls):
    """Undo a prefix of a trailed run, redo it, compare fingerprints.

    The rewound state must reproduce the exact pre-round fingerprint —
    including the tie partitions served by the (trail-aware) sides cache
    — and the redo must land on the original final model.
    """
    program, db = generator(n)
    gp = ground(program, db, mode=mode)
    state = state_cls(gp)
    state.trail_begin()
    state.close()

    marks = []
    fingerprints = []
    for _ in range(MAX_ROUNDS):
        marks.append(state.trail_mark())
        fingerprints.append(_fingerprint(state))
        if not _drive_round(state):
            break
    else:
        pytest.fail("drive did not converge")
    final = (tuple(state.status), frozenset(state.live_atom_ids()))
    assert len(marks) >= 2, "family too small to exercise an undo prefix"

    for target in {0, len(marks) // 2, len(marks) - 1}:
        state.trail_undo(marks[target])
        assert _fingerprint(state) == fingerprints[target], (
            f"{name}/{backend}: fingerprint diverges after undo to round {target}"
        )
        for _ in range(MAX_ROUNDS):
            if not _drive_round(state):
                break
        else:
            pytest.fail("redo did not converge")
        assert (tuple(state.status), frozenset(state.live_atom_ids())) == final, (
            f"{name}/{backend}: redo from round {target} missed the original model"
        )
