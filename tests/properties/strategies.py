"""Hypothesis strategies for random Datalog¬ inputs.

Two program shapes:

* *propositional* — up to 8 zero-ary predicates, arbitrary signs (odd
  cycles likely): the adversarial distribution for semantics properties;
* *unary-binary* — small predicate programs over a universe of up to 3
  constants with a random database: exercises grounding and joins.

Programs are built from plain draws (no reliance on the library's own
random generators, so the generators themselves stay under test).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

PRED_NAMES = [f"p{i}" for i in range(8)]
EDB_NAMES = ["e0", "e1"]
CONSTANTS = [Constant(v) for v in ("a", "b", "c")]
VARIABLES = [Variable(v) for v in ("X", "Y")]


@st.composite
def propositional_programs(draw, max_rules: int = 10, max_body: int = 3):
    """Random propositional Datalog¬ programs (EDBs e0/e1 possible)."""
    names = PRED_NAMES + EDB_NAMES
    n_rules = draw(st.integers(1, max_rules))
    rules = []
    for _ in range(n_rules):
        head = Atom(draw(st.sampled_from(PRED_NAMES)))
        body_size = draw(st.integers(0, max_body))
        body = tuple(
            Literal(Atom(draw(st.sampled_from(names))), draw(st.booleans()))
            for _ in range(body_size)
        )
        rules.append(Rule(head, body))
    return Program(rules)


@st.composite
def propositional_databases(draw, program: Program):
    """A random database for a propositional program (uniform case: may
    include IDB propositions)."""
    db = Database()
    for predicate in sorted(program.predicates):
        if draw(st.booleans()):
            db.add(predicate)
    return db


@st.composite
def propositional_cases(draw, max_rules: int = 10):
    """(program, database) pairs, database EDB-only half the time."""
    program = draw(propositional_programs(max_rules=max_rules))
    if draw(st.booleans()):
        db = Database()
        for predicate in sorted(program.edb_predicates):
            if draw(st.booleans()):
                db.add(predicate)
        return program, db
    return program, draw(propositional_databases(program))


@st.composite
def small_predicate_programs(draw, max_rules: int = 5):
    """Random unary/binary-predicate programs over a tiny term vocabulary."""
    unary = ["q0", "q1", "q2"]
    binary = ["r0", "r1"]
    edb = ["eu", "eb"]

    def random_atom(names_unary, names_binary):
        if draw(st.booleans()):
            name = draw(st.sampled_from(names_unary))
            term = draw(st.sampled_from(CONSTANTS + VARIABLES))
            return Atom(name, (term,))
        name = draw(st.sampled_from(names_binary))
        args = (
            draw(st.sampled_from(CONSTANTS + VARIABLES)),
            draw(st.sampled_from(CONSTANTS + VARIABLES)),
        )
        return Atom(name, args)

    rules = []
    for _ in range(draw(st.integers(1, max_rules))):
        head = random_atom(unary, binary)
        body = tuple(
            Literal(random_atom(unary + ["eu"], binary + ["eb"]), draw(st.booleans()))
            for _ in range(draw(st.integers(0, 2)))
        )
        rules.append(Rule(head, body))
    return Program(rules)


# -- signed tie components and deletion traces ---------------------------
#
# Generators for the Lemma-1 incremental machinery
# (:class:`repro.graphs.ties.TieSides`).  A component is built from a
# *planted* side assignment: signs are derived from it (positive inside a
# side, negative across), so the graph is 2-colorable by construction and
# the planted labelling is a ground-truth witness.  Strong connectivity
# comes from a random cycle cover (one directed cycle through all nodes);
# flipping the sign of any arc then introduces an odd cycle, because every
# arc lies on a cycle.


@st.composite
def signed_tie_components(draw, max_nodes: int = 10, flipped: bool | None = None):
    """A signed strongly connected component.

    Returns ``(nodes, arcs, planted, n_flipped)``: sorted node ids,
    signed arcs ``(u, v, positive)``, the planted node → side dict, and
    how many arc signs were flipped afterwards (0 ⟺ the component is a
    tie; > 0 ⟺ it has an odd cycle through each flipped arc).
    ``flipped`` forces (True) or forbids (False) sign flips; ``None``
    draws it.
    """
    n = draw(st.integers(2, max_nodes))
    nodes = list(range(n))
    planted = {u: draw(st.integers(0, 1)) for u in nodes}
    perm = draw(st.permutations(nodes))
    pairs = {(perm[i], perm[(i + 1) % n]) for i in range(n)}
    extra = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            max_size=2 * n,
        )
    )
    pairs.update(extra)
    arcs = [(u, v, planted[u] == planted[v]) for u, v in sorted(pairs)]
    if flipped is None:
        flipped = draw(st.booleans())
    n_flipped = 0
    if flipped:
        count = draw(st.integers(1, max(1, len(arcs) // 3)))
        indices = draw(
            st.lists(
                st.integers(0, len(arcs) - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        for i in indices:
            u, v, positive = arcs[i]
            arcs[i] = (u, v, not positive)
        n_flipped = len(indices)
    return nodes, arcs, planted, n_flipped


@st.composite
def tie_deletion_traces(draw, max_nodes: int = 10, max_steps: int = 6):
    """A component plus a random deletion trace over it.

    Returns ``(nodes, arcs, steps)`` where each step is ``("edges",
    [signed arcs])`` or ``("nodes", [node ids])``.  Traces cover the
    interesting regimes by construction: deletions on an intact planted
    component stay tie-preserving until one *splits* the component, and
    traces drawn over a sign-flipped component carry violated edges whose
    set must shrink/move correctly as the trace deletes around them.
    """
    nodes, arcs, _planted, _n_flipped = draw(signed_tie_components(max_nodes=max_nodes))
    live_arcs = list(arcs)
    live_nodes = set(nodes)
    steps = []
    for _ in range(draw(st.integers(1, max_steps))):
        kinds = []
        if live_arcs:
            kinds.append("edges")
        if live_nodes:
            kinds.append("nodes")
        if not kinds:
            break
        kind = draw(st.sampled_from(kinds))
        if kind == "edges":
            count = draw(st.integers(1, min(3, len(live_arcs))))
            chosen = draw(
                st.lists(
                    st.sampled_from(live_arcs),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            steps.append(("edges", chosen))
            gone = set(chosen)
            live_arcs = [a for a in live_arcs if a not in gone]
        else:
            count = draw(st.integers(1, min(2, len(live_nodes))))
            chosen = draw(
                st.lists(
                    st.sampled_from(sorted(live_nodes)),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            steps.append(("nodes", chosen))
            dead = set(chosen)
            live_nodes -= dead
            live_arcs = [a for a in live_arcs if a[0] not in dead and a[1] not in dead]
    return nodes, arcs, steps


@st.composite
def small_predicate_cases(draw):
    """(program, database) with random unary 'eu' and binary 'eb' facts."""
    program = draw(small_predicate_programs())
    db = Database()
    for constant in CONSTANTS:
        if draw(st.booleans()):
            db.add("eu", constant)
    for left in CONSTANTS[:2]:
        for right in CONSTANTS[:2]:
            if draw(st.booleans()):
                db.add("eb", left, right)
    return program, db
