"""Hypothesis strategies for random Datalog¬ inputs.

Two program shapes:

* *propositional* — up to 8 zero-ary predicates, arbitrary signs (odd
  cycles likely): the adversarial distribution for semantics properties;
* *unary-binary* — small predicate programs over a universe of up to 3
  constants with a random database: exercises grounding and joins.

Programs are built from plain draws (no reliance on the library's own
random generators, so the generators themselves stay under test).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

PRED_NAMES = [f"p{i}" for i in range(8)]
EDB_NAMES = ["e0", "e1"]
CONSTANTS = [Constant(v) for v in ("a", "b", "c")]
VARIABLES = [Variable(v) for v in ("X", "Y")]


@st.composite
def propositional_programs(draw, max_rules: int = 10, max_body: int = 3):
    """Random propositional Datalog¬ programs (EDBs e0/e1 possible)."""
    names = PRED_NAMES + EDB_NAMES
    n_rules = draw(st.integers(1, max_rules))
    rules = []
    for _ in range(n_rules):
        head = Atom(draw(st.sampled_from(PRED_NAMES)))
        body_size = draw(st.integers(0, max_body))
        body = tuple(
            Literal(Atom(draw(st.sampled_from(names))), draw(st.booleans()))
            for _ in range(body_size)
        )
        rules.append(Rule(head, body))
    return Program(rules)


@st.composite
def propositional_databases(draw, program: Program):
    """A random database for a propositional program (uniform case: may
    include IDB propositions)."""
    db = Database()
    for predicate in sorted(program.predicates):
        if draw(st.booleans()):
            db.add(predicate)
    return db


@st.composite
def propositional_cases(draw, max_rules: int = 10):
    """(program, database) pairs, database EDB-only half the time."""
    program = draw(propositional_programs(max_rules=max_rules))
    if draw(st.booleans()):
        db = Database()
        for predicate in sorted(program.edb_predicates):
            if draw(st.booleans()):
                db.add(predicate)
        return program, db
    return program, draw(propositional_databases(program))


@st.composite
def small_predicate_programs(draw, max_rules: int = 5):
    """Random unary/binary-predicate programs over a tiny term vocabulary."""
    unary = ["q0", "q1", "q2"]
    binary = ["r0", "r1"]
    edb = ["eu", "eb"]

    def random_atom(names_unary, names_binary):
        if draw(st.booleans()):
            name = draw(st.sampled_from(names_unary))
            term = draw(st.sampled_from(CONSTANTS + VARIABLES))
            return Atom(name, (term,))
        name = draw(st.sampled_from(names_binary))
        args = (
            draw(st.sampled_from(CONSTANTS + VARIABLES)),
            draw(st.sampled_from(CONSTANTS + VARIABLES)),
        )
        return Atom(name, args)

    rules = []
    for _ in range(draw(st.integers(1, max_rules))):
        head = random_atom(unary, binary)
        body = tuple(
            Literal(random_atom(unary + ["eu"], binary + ["eb"]), draw(st.booleans()))
            for _ in range(draw(st.integers(0, 2)))
        )
        rules.append(Rule(head, body))
    return Program(rules)


@st.composite
def small_predicate_cases(draw):
    """(program, database) with random unary 'eu' and binary 'eb' facts."""
    program = draw(small_predicate_programs())
    db = Database()
    for constant in CONSTANTS:
        if draw(st.booleans()):
            db.add("eu", constant)
    for left in CONSTANTS[:2]:
        for right in CONSTANTS[:2]:
            if draw(st.booleans()):
                db.add("eb", left, right)
    return program, db
