"""Differential properties pinning the v2 kernel's incremental machinery.

Four pieces of kernel-v2 state carry answers across rounds instead of
recomputing them — each is driven here against an oracle that shares none
of its bookkeeping:

* the **fused unfounded cascade** (``falsify_unfounded``, source
  pointers maintained by ``close``) against the step-by-step loop over
  ``unfounded_atoms(full_recompute=True)`` — the read-only full cascade;
* the **incremental unfounded query** against ``full_recompute=True`` at
  every interpreter step;
* the **min-keyed tie schedule** (``select_tie``) against the
  schedule-free scan of ``bottom_components_live()`` at every step;
* the **trail-based undo log** — the trail-undo DFS enumerator must emit
  the identical (model, choice-trail) sequence as the clone-based
  reference explorer, and a ``trail_undo`` must land on a state
  indistinguishable (statuses, liveness, counters, query answers) from a
  ``clone`` taken at the mark.

Random inputs come from the hypothesis strategies and from the library's
own :mod:`repro.workloads.random_programs` distributions (the latter also
being what the bench pipeline scales up), plus every named workload
family at small sizes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database
from repro.datalog.grounding import apply_facts_delta, ground
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState
from repro.semantics.tie_breaking import (
    _enumerate_reference,
    _enumerate_tie_breaking_models,
    _select_tie,
)
from repro.workloads import families
from repro.workloads.random_programs import random_propositional_program

from tests.properties.strategies import propositional_programs

MAX_STEPS = 64

FAMILY_CASES = [
    ("win_move_line", families.win_move_line, 7, "relevant"),
    ("win_move_cycle", families.win_move_cycle, 8, "relevant"),
    ("unfounded_tower", families.unfounded_tower, 5, "relevant"),
    ("tie_chain", families.tie_chain, 5, "relevant"),
    ("committee", families.committee, 5, "relevant"),
    ("grounded_argumentation", families.grounded_argumentation, 13, "relevant"),
    ("adversarial_scc", families.adversarial_scc, 8, "relevant"),
]

RANDOM_DISTRIBUTIONS = [
    dict(n_predicates=8, n_rules=14, max_body=3, negation_probability=0.45, edb_predicates=2),
    dict(n_predicates=7, n_rules=12, negation_probability=0.35, edb_predicates=2),
    dict(n_predicates=6, n_rules=10, negation_probability=0.6, edb_predicates=1),
]


def _grounds():
    """Every (name, ground program) case: families plus random programs."""
    for name, generator, n, mode in FAMILY_CASES:
        program, db = generator(n)
        yield f"{name}({n})", ground(program, db, mode=mode)
    for d, dist in enumerate(RANDOM_DISTRIBUTIONS):
        for seed in range(4):
            program = random_propositional_program(seed=100 * d + seed, **dist)
            for mode in ("full", "relevant"):
                yield f"dist{d}-seed{seed}-{mode}", ground(program, Database(), mode=mode)


GROUND_CASES = list(_grounds())


def _run_key(run) -> tuple:
    """Comparable view of one run: (true set, id-based decision trail)."""
    return (
        frozenset(run.model.true_set()),
        tuple((c.true_ids, c.false_ids, c.forced) for c in run.choices),
    )


def _drive_stepwise_oracle(gp) -> tuple[list[int], int]:
    """Well-founded tie-breaking via the escape hatches only.

    Uses ``unfounded_atoms(full_recompute=True)`` +
    ``bottom_components_live(full_recompute=True)`` scanning — no source
    pointers, no schedule, no fused cascade.
    """
    state = GroundGraphState(gp)
    state.close()
    iterations = 0
    for _ in range(MAX_STEPS):
        unfounded = state.unfounded_atoms(full_recompute=True)
        if unfounded:
            iterations += 1
            state.assign_many(unfounded, FALSE, ("unfounded", iterations))
            state.close()
            continue
        tie = None
        tie_key = None
        for component in state.bottom_components_live(full_recompute=True):
            if not component.is_tie:
                continue
            key = min(component.atom_ids)
            if tie_key is None or key < tie_key:
                tie, tie_key = component, key
        if tie is None:
            return list(state.status), iterations
        sides = tie.side_of_atom()
        side_atoms: tuple[list[int], list[int]] = ([], [])
        for atom_id, side in sides.items():
            side_atoms[side].append(atom_id)
        if not side_atoms[0]:
            true_side = 0
        elif not side_atoms[1]:
            true_side = 1
        else:
            true_side = 0 if min(side_atoms[0]) <= min(side_atoms[1]) else 1
        state.assign_many(side_atoms[true_side], TRUE, ("tie", true_side))
        state.assign_many(side_atoms[1 - true_side], FALSE, ("tie", 1 - true_side))
        state.close()
    pytest.fail("stepwise oracle did not converge")


def _drive_fused(gp) -> tuple[list[int], int]:
    """The same trajectory through the v2 hot path (fused + schedule)."""
    state = GroundGraphState(gp)
    state.close()
    iterations = 0
    for _ in range(MAX_STEPS):
        iterations += state.falsify_unfounded(numbered=True, start=iterations + 1)
        tie = state.select_tie()
        if tie is None:
            return list(state.status), iterations
        sides = tie.side_of_atom()
        side_atoms: tuple[list[int], list[int]] = ([], [])
        for atom_id, side in sides.items():
            side_atoms[side].append(atom_id)
        if not side_atoms[0]:
            true_side = 0
        elif not side_atoms[1]:
            true_side = 1
        else:
            true_side = 0 if min(side_atoms[0]) <= min(side_atoms[1]) else 1
        state.assign_many(side_atoms[true_side], TRUE, ("tie", true_side))
        state.assign_many(side_atoms[1 - true_side], FALSE, ("tie", 1 - true_side))
        state.close()
    pytest.fail("fused drive did not converge")


@pytest.mark.parametrize("name,gp", GROUND_CASES, ids=[n for n, _ in GROUND_CASES])
def test_fused_cascade_matches_stepwise_full_recompute(name, gp):
    """falsify_unfounded + select_tie ≡ the full_recompute step loop."""
    fused_status, fused_iters = _drive_fused(gp)
    oracle_status, oracle_iters = _drive_stepwise_oracle(gp)
    assert fused_status == oracle_status
    assert fused_iters == oracle_iters


@pytest.mark.parametrize("name,gp", GROUND_CASES, ids=[n for n, _ in GROUND_CASES])
def test_incremental_queries_match_oracles_per_step(name, gp):
    """unfounded_atoms() and select_tie() vs their per-step oracles."""
    state = GroundGraphState(gp)
    state.close()
    for step in range(MAX_STEPS):
        incremental = state.unfounded_atoms()
        assert incremental == state.unfounded_atoms(full_recompute=True)
        if incremental:
            state.assign_many(incremental, FALSE, ("unfounded", step))
            state.close()
            continue
        scheduled = state.select_tie()
        scanned = _select_tie(state)
        if scheduled is None:
            assert scanned is None
            return
        assert scanned is not None
        assert sorted(scheduled.atom_ids) == sorted(scanned.atom_ids)
        assert sorted(scheduled.rule_ids) == sorted(scanned.rule_ids)
        assert scheduled.is_tie and scanned.is_tie
        sides = scheduled.side_of_atom()
        made_true = sorted(a for a, s in sides.items() if s == 0)
        made_false = sorted(a for a, s in sides.items() if s == 1)
        state.assign_many(made_true, TRUE, ("tie", 0))
        state.assign_many(made_false, FALSE, ("tie", 1))
        state.close()
    pytest.fail("drive did not converge")


@pytest.mark.parametrize("variant", ["well-founded", "pure"])
@pytest.mark.parametrize("name,gp", GROUND_CASES, ids=[n for n, _ in GROUND_CASES])
def test_trail_enumeration_matches_clone_reference(name, gp, variant):
    """Identical (model, choice-trail) run sequences, trail vs clone."""
    trail_runs = [
        _run_key(run)
        for run in _enumerate_tie_breaking_models(
            gp.program, gp.database, variant=variant, ground_program=gp
        )
    ]
    clone_runs = [_run_key(run) for run in _enumerate_reference(gp, variant=variant)]
    assert trail_runs == clone_runs
    assert trail_runs  # at least one run is always emitted


@pytest.mark.parametrize("limit", [0, 1, 3])
def test_trail_enumeration_respects_limit(limit):
    program, db = families.committee(4)
    gp = ground(program, db, mode="relevant")
    runs = list(
        _enumerate_tie_breaking_models(program, db, ground_program=gp, limit=limit)
    )
    assert len(runs) == min(limit, 16)


# Field audit of GroundGraphState: every instance attribute must appear
# in exactly one of these sets, and test_state_fields_are_classified
# fails on any attribute in none of them — so a new mutable field (the
# way the streaming-update overlay added rule_alive seeding and the
# canonical atom order) cannot be added without deciding how the
# trail-undo ≡ clone fingerprint covers it.
#
# CORE state is captured by _state_fingerprint (raw, normalized, or —
# for the provenance buffers — decoded through reason_of, since undo
# clears reason kinds but leaves the unreferenced argument slots stale).
_CORE_STATE = frozenset(
    {
        "status",
        "atom_alive",
        "rule_alive",
        "rule_pending",
        "atom_support",
        "pos_live",
        "_live_atoms",
        "_atom_slot",
        "_live_rules",
        "_rule_slot",
        "_live_atom_count",
        "_reason_kind",
        "_reason_arg",
        "_labels",
        "_dirty",
        "_initial",
    }
)
# DERIVED caches rebuild on demand; undo restores them only to a
# *consistent* view, so the audit pins their query answers (unfounded
# set, selected tie) rather than their representation.
_DERIVED_CACHES = frozenset(
    {
        "_src",
        "_unf_valid",
        "_unf_lost",
        "_unf_sourceless",
        "_scc_comps",
        "_scc_comp_of",
        "_scc_incross",
        "_scc_bottom",
        "_scc_bottom_obj",
        "_scc_next_cid",
        "_scc_dirty",
        "_tie_heap",
        "_tie_sides",
    }
)
# SHARED structure is immutable and owned by the ground program/index;
# the fingerprint asserts identity for the overlay's atom order.
_SHARED_IMMUTABLE = frozenset({"gp", "_idx", "n_atoms", "n_rules", "_order"})
# MACHINERY is the trail itself, the epoch-disciplined query scratch,
# and accounting (wall-clock phases, the select_ties round counter) —
# definitionally outside state equality.
_MACHINERY = frozenset(
    {"_trail", "_scratch", "phase_s", "tie_rounds", "_ta_overlap"}
)


def test_state_fields_are_classified():
    """Every GroundGraphState field is classified for the trail audit."""
    program, db = families.win_move_line(4)
    state = GroundGraphState(ground(program, db, mode="relevant"))
    fields = set(vars(state))
    classified = _CORE_STATE | _DERIVED_CACHES | _SHARED_IMMUTABLE | _MACHINERY
    unclassified = fields - classified
    assert not unclassified, (
        f"unclassified GroundGraphState field(s) {sorted(unclassified)}: add "
        "trail coverage and extend _state_fingerprint (core), or classify "
        "them as derived/shared/machinery here"
    )
    stale = classified - fields
    assert not stale, f"classified field(s) no longer exist: {sorted(stale)}"
    overlap = (
        (_CORE_STATE & _DERIVED_CACHES)
        | (_CORE_STATE & _SHARED_IMMUTABLE)
        | (_CORE_STATE & _MACHINERY)
        | (_DERIVED_CACHES & _SHARED_IMMUTABLE)
        | (_DERIVED_CACHES & _MACHINERY)
        | (_SHARED_IMMUTABLE & _MACHINERY)
    )
    assert not overlap, f"ambiguously classified field(s): {sorted(overlap)}"


def _state_fingerprint(state: GroundGraphState) -> tuple:
    """Comparable view of every _CORE_STATE field of one state.

    The swap-remove live lists and their slot maps are order-sensitive
    representations of sets (undo may repack them differently than the
    timeline it rewinds), so they are normalized: sorted contents plus an
    internal-consistency check.  Provenance is compared decoded.
    """
    for node in state._live_atoms:
        assert state._live_atoms[state._atom_slot[node]] == node
    for node in state._live_rules:
        assert state._live_rules[state._rule_slot[node]] == node
    return (
        list(state.status),
        bytes(state.atom_alive),
        bytes(state.rule_alive),
        list(state.rule_pending),
        list(state.atom_support),
        list(state.pos_live),
        sorted(state._live_atoms),
        sorted(state._live_rules),
        state.live_atom_count,
        bytes(state._reason_kind),
        tuple(state.reason_of(i) for i in range(state.n_atoms)),
        sorted(state._dirty),
        state._initial,
    )


@settings(max_examples=40, deadline=None)
@given(program=propositional_programs(), steps=st.integers(min_value=1, max_value=4))
def test_trail_undo_restores_clone_equivalent_state(program, steps):
    """After trail_undo, the state answers like a clone taken at the mark."""
    gp = ground(program, Database(), mode="full")
    state = GroundGraphState(gp)
    state.trail_begin()
    state.close()
    state.falsify_unfounded(numbered=False)
    reference = state.clone()
    mark = state.trail_mark()

    # Wander: break up to `steps` ties (the branchy mutation source).
    for _ in range(steps):
        tie = state.select_tie()
        if tie is None:
            break
        sides = tie.side_of_atom()
        state.assign_many([a for a, s in sides.items() if s == 0], TRUE, ("tie", 0))
        state.assign_many([a for a, s in sides.items() if s == 1], FALSE, ("tie", 1))
        state.close()
        state.falsify_unfounded(numbered=False)
    state.trail_undo(mark)

    assert _state_fingerprint(state) == _state_fingerprint(reference)
    assert state.unfounded_atoms() == reference.unfounded_atoms()
    assert state.unfounded_atoms() == state.unfounded_atoms(full_recompute=True)
    undone = state.select_tie()
    cloned = _select_tie(reference)
    if undone is None:
        assert cloned is None
    else:
        assert cloned is not None
        assert sorted(undone.atom_ids) == sorted(cloned.atom_ids)

    # The rewound state must still drive to the same final model as the
    # untouched clone under the same canonical decisions.
    undone_status, undone_iters = _drive_from(state)
    clone_status, clone_iters = _drive_from(reference)
    assert undone_status == clone_status
    assert undone_iters == clone_iters


def test_trail_undo_on_streamed_ground_program():
    """The trail audit holds on a delta-updated index (overlay fields).

    After streaming updates the index carries the overlay's extra state —
    disabled instances seeding ``rule_alive``, ghost atoms, and the
    canonical ``atom_order`` — and the trail-undo ≡ clone equivalence
    must survive all of it.
    """
    program, db = families.win_move_cycle(8)
    db = db.copy()
    gp = ground(program, db, mode="relevant")
    facts = sorted(db.atoms(), key=str)
    first, second = facts[2], facts[4]
    for inserted, retracted in ([[], [first]], [[first], []], [[], [second]]):
        for atom in retracted:
            db.discard_atom(atom)
        for atom in inserted:
            db.add_atom(atom)
        assert apply_facts_delta(gp, inserted, retracted)

    state = GroundGraphState(gp)
    assert state._order is gp.index.atom_order  # shared, never copied
    assert bytes(state.rule_alive) == bytes(gp.index.initial_rule_alive)
    state.trail_begin()
    state.close()
    state.falsify_unfounded(numbered=False)
    reference = state.clone()
    assert reference._order is state._order
    mark = state.trail_mark()

    for _ in range(3):
        tie = state.select_tie()
        if tie is None:
            break
        sides = tie.side_of_atom()
        state.assign_many([a for a, s in sides.items() if s == 0], TRUE, ("tie", 0))
        state.assign_many([a for a, s in sides.items() if s == 1], FALSE, ("tie", 1))
        state.close()
        state.falsify_unfounded(numbered=False)
    state.trail_undo(mark)

    assert _state_fingerprint(state) == _state_fingerprint(reference)
    assert state.unfounded_atoms() == state.unfounded_atoms(full_recompute=True)
    undone_status, _ = _drive_from(state)
    clone_status, _ = _drive_from(reference)
    assert undone_status == clone_status


def test_close_after_undo_past_rebuild():
    """Undoing past the first condensation build must disarm close()'s
    SCC tracking (regression: stale comp_of against an empty incross map
    raised KeyError on the next close)."""
    program, db = families.tie_chain(4)
    gp = ground(program, db, mode="relevant")
    state = GroundGraphState(gp)
    state.trail_begin()
    state.close()
    state.falsify_unfounded(numbered=False)
    mark = state.trail_mark()
    labels_before = len(state._labels)
    tie = state.select_tie()  # first query: appends the rebuild record
    assert tie is not None
    sides = tie.side_of_atom()
    state.assign_many([a for a, s in sides.items() if s == 0], TRUE, ("tie", 0))
    state.assign_many([a for a, s in sides.items() if s == 1], FALSE, ("tie", 1))
    state.close()
    state.trail_undo(mark)
    # Labels interned since the mark are reclaimed with it.
    assert len(state._labels) == labels_before
    # Mutate and close again WITHOUT an intervening query: tracking must
    # be off until the next query rebuilds the condensation (the undone
    # component ids no longer have edge counts).
    state.assign_many([a for a, s in sides.items() if s == 0], TRUE, ("tie", 0))
    state.assign_many([a for a, s in sides.items() if s == 1], FALSE, ("tie", 1))
    state.close()
    status, _ = _drive_from(state)
    fresh_status, _ = _drive_fused(gp)
    assert status == fresh_status


def _drive_from(state: GroundGraphState) -> tuple[list[int], int]:
    iterations = 0
    for _ in range(MAX_STEPS):
        iterations += state.falsify_unfounded(numbered=False)
        tie = state.select_tie()
        if tie is None:
            return list(state.status), iterations
        sides = tie.side_of_atom()
        side_atoms: tuple[list[int], list[int]] = ([], [])
        for atom_id, side in sides.items():
            side_atoms[side].append(atom_id)
        if not side_atoms[0]:
            true_side = 0
        elif not side_atoms[1]:
            true_side = 1
        else:
            true_side = 0 if min(side_atoms[0]) <= min(side_atoms[1]) else 1
        state.assign_many(side_atoms[true_side], TRUE, ("tie", true_side))
        state.assign_many(side_atoms[1 - true_side], FALSE, ("tie", 1 - true_side))
        state.close()
    pytest.fail("post-undo drive did not converge")


@settings(max_examples=30, deadline=None)
@given(program=propositional_programs())
def test_hypothesis_trail_enumeration_matches_clone(program):
    gp = ground(program, Database(), mode="full")
    trail_runs = [
        _run_key(run)
        for run in _enumerate_tie_breaking_models(
            gp.program, gp.database, variant="well-founded", ground_program=gp
        )
    ]
    clone_runs = [
        _run_key(run) for run in _enumerate_reference(gp, variant="well-founded")
    ]
    assert trail_runs == clone_runs
