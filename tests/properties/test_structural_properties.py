"""Property-based validation of the structural analyses and constructions."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.structural import (
    is_structurally_nonuniformly_total,
    is_structurally_total,
    odd_cycle_in_program_graph,
)
from repro.analysis.useless import reduced_program, useless_predicates
from repro.constructions.theorem2 import theorem2_variant
from repro.constructions.theorem3 import theorem3_variant
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.printer import format_program
from repro.datalog.skeleton import is_alphabetic_variant, skeleton_of
from repro.semantics.completion import has_fixpoint
from repro.semantics.stable import is_stable_model
from repro.semantics.tie_breaking import well_founded_tie_breaking
from repro.workloads.random_programs import random_call_consistent_program

from tests.properties.strategies import (
    propositional_cases,
    propositional_programs,
    small_predicate_programs,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=100, **COMMON)
@given(program=propositional_programs())
def test_odd_cycle_witness_is_valid(program):
    """Any returned witness is a simple cycle of the program graph with odd
    negative parity; absence of a witness means call-consistent."""
    witness = odd_cycle_in_program_graph(program)
    if witness is None:
        assert is_structurally_total(program)
        return
    assert witness.negative_count % 2 == 1
    # closed and simple
    predicates = [source for source, _, _ in witness.arcs]
    assert len(set(predicates)) == len(predicates)
    assert witness.arcs[-1][1] == witness.arcs[0][0]
    for (_, target, _), (source, _, _) in zip(witness.arcs, witness.arcs[1:]):
        assert target == source
    # every arc is realized by some rule occurrence
    for source, target, positive in witness.arcs:
        assert any(
            rule.head.predicate == target
            and any(
                lit.predicate == source and lit.positive == positive
                for lit in rule.body
            )
            for rule in program.rules
        )


@settings(max_examples=100, **COMMON)
@given(program=propositional_programs())
def test_reduction_is_idempotent_and_clean(program):
    reduced = reduced_program(program)
    assert useless_predicates(reduced) == frozenset()
    again = reduced_program(reduced)
    assert skeleton_of(again) == skeleton_of(reduced)
    # reduced rules never mention useless predicates
    useless = useless_predicates(program)
    for rule in reduced.rules:
        assert rule.head.predicate not in useless
        for lit in rule.body:
            assert lit.predicate not in useless


@settings(max_examples=40, **COMMON)
@given(program=propositional_programs(max_rules=7))
def test_theorem2_variant_never_has_fixpoint(program):
    """Whenever the builder applies (an odd cycle exists), the produced
    variant + database is UNSAT — the Theorem 2 guarantee on random input."""
    if is_structurally_total(program):
        return
    variant, delta = theorem2_variant(program)
    assert is_alphabetic_variant(program, variant)
    assert not has_fixpoint(variant, delta, grounding="full")


@settings(max_examples=40, **COMMON)
@given(program=propositional_programs(max_rules=7))
def test_theorem3_variant_never_has_fixpoint(program):
    if is_structurally_nonuniformly_total(program):
        return
    variant, delta = theorem3_variant(program)
    assert is_alphabetic_variant(program, variant)
    assert not has_fixpoint(variant, delta, grounding="full")


@settings(max_examples=30, **COMMON)
@given(seed=st.integers(0, 10_000), db_bits=st.integers(0, 255))
def test_theorem1_on_random_call_consistent_programs(seed, db_bits):
    """Call-consistent ⇒ WFTB total and stable, for random databases
    (uniform case: IDB initializations included)."""
    program = random_call_consistent_program(8, 14, seed=seed)
    db = Database()
    for offset, name in enumerate(sorted(program.predicates)):
        if (db_bits >> (offset % 8)) & 1:
            db.add(name)
    run = well_founded_tie_breaking(program, db, grounding="full")
    assert run.is_total
    assert is_stable_model(program, db, run.model.true_set())


@settings(max_examples=100, **COMMON)
@given(program=propositional_programs())
def test_printer_parser_roundtrip_propositional(program):
    assert parse_program(format_program(program)) == program


@settings(max_examples=100, **COMMON)
@given(program=small_predicate_programs())
def test_printer_parser_roundtrip_predicates(program):
    assert parse_program(format_program(program)) == program


@settings(max_examples=100, **COMMON)
@given(case=propositional_cases())
def test_structural_totality_is_database_independent(case):
    """The structural check only reads the skeleton: rebuilding the program
    from its skeleton preserves the verdict."""
    program, _ = case
    rebuilt = skeleton_of(program).as_propositional_program()
    assert is_structurally_total(program) == is_structurally_total(rebuilt)
    assert is_structurally_nonuniformly_total(program) == is_structurally_nonuniformly_total(rebuilt)
