"""Property-based cross-validation of the semantics implementations.

Each property pits at least two independent implementations against each
other on adversarial random inputs — the strongest evidence this
reproduction has that the paper's machinery is implemented faithfully.
"""

import itertools

from hypothesis import HealthCheck, given, settings

from repro.datalog.atoms import Atom
from repro.semantics.alternating import alternating_fixpoint_model, is_stable_via_gamma
from repro.semantics.completion import enumerate_fixpoints
from repro.semantics.fitting import fitting_model
from repro.semantics.fixpoint import is_fixpoint
from repro.semantics.stable import is_stable_model
from repro.semantics.tie_breaking import pure_tie_breaking, well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model

from tests.properties.strategies import propositional_cases, small_predicate_cases

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=120, **COMMON)
@given(case=propositional_cases())
def test_wf_equals_alternating_fixpoint_propositional(case):
    """Algorithm Well-Founded ≡ Van Gelder's alternating fixpoint."""
    program, db = case
    wf = well_founded_model(program, db, grounding="full")
    alt = alternating_fixpoint_model(program, db, grounding="full")
    assert wf.model.agrees_with(alt)


@settings(max_examples=60, **COMMON)
@given(case=small_predicate_cases())
def test_wf_equals_alternating_fixpoint_predicates(case):
    program, db = case
    wf = well_founded_model(program, db, grounding="full")
    alt = alternating_fixpoint_model(program, db, grounding="full")
    assert wf.model.agrees_with(alt)


@settings(max_examples=80, **COMMON)
@given(case=propositional_cases())
def test_wf_full_equals_wf_relevant(case):
    """The relevant-grounding substitution is invisible to the WF semantics."""
    program, db = case
    full = well_founded_model(program, db, grounding="full")
    relevant = well_founded_model(program, db, grounding="relevant")
    assert full.model.agrees_with(relevant.model)


@settings(max_examples=50, **COMMON)
@given(case=small_predicate_cases())
def test_wf_full_equals_wf_relevant_predicates(case):
    program, db = case
    full = well_founded_model(program, db, grounding="full")
    relevant = well_founded_model(program, db, grounding="relevant")
    assert full.model.agrees_with(relevant.model)


@settings(max_examples=80, **COMMON)
@given(case=propositional_cases())
def test_wftb_extends_wf(case):
    """WFTB never contradicts the well-founded model (§3 consistency)."""
    program, db = case
    wf = well_founded_model(program, db, grounding="full").model
    tb = well_founded_tie_breaking(program, db, grounding="full").model
    for atom in wf.true_atoms():
        assert tb.value(atom) is True
    for atom in wf.false_atoms():
        assert tb.value(atom) is False


@settings(max_examples=80, **COMMON)
@given(case=propositional_cases())
def test_lemma2_total_tie_breaking_models_are_fixpoints(case):
    """Lemma 2 for both interpreter variants (default policy)."""
    program, db = case
    for run in (
        pure_tie_breaking(program, db, grounding="full"),
        well_founded_tie_breaking(program, db, grounding="full"),
    ):
        if run.is_total:
            assert is_fixpoint(program, db, run.model.true_set())


@settings(max_examples=60, **COMMON)
@given(case=propositional_cases())
def test_lemma3_total_wftb_models_are_stable_all_checkers(case):
    """Lemma 3 via three independent stable-model checkers."""
    program, db = case
    run = well_founded_tie_breaking(program, db, grounding="full")
    if not run.is_total:
        return
    trues = run.model.true_set()
    assert is_stable_model(program, db, trues, method="reduct")
    assert is_stable_model(program, db, trues, method="close", grounding="full")
    assert is_stable_via_gamma(program, db, trues)


@settings(max_examples=60, **COMMON)
@given(case=propositional_cases(max_rules=7))
def test_completion_enumeration_equals_brute_force(case):
    """SAT-based fixpoint enumeration ≡ exhaustive subset checking."""
    program, db = case
    free = sorted(program.idb_predicates - db.predicates())
    if len(free) > 7:
        return
    fixed_true = {Atom(p) for p in sorted(db.predicates())}
    brute = set()
    for bits in itertools.product([False, True], repeat=len(free)):
        candidate = fixed_true | {Atom(p) for p, b in zip(free, bits) if b}
        if is_fixpoint(program, db, candidate):
            brute.add(frozenset(candidate))
    via_sat = set(enumerate_fixpoints(program, db, grounding="full"))
    assert via_sat == brute


@settings(max_examples=60, **COMMON)
@given(case=propositional_cases())
def test_every_enumerated_fixpoint_verifies(case):
    program, db = case
    for model in enumerate_fixpoints(program, db, grounding="full", limit=8):
        assert is_fixpoint(program, db, model)


@settings(max_examples=60, **COMMON)
@given(case=propositional_cases())
def test_stable_checkers_agree(case):
    """The paper's close-based test ≡ GL reduct ≡ Γ-fixpoint, on every
    enumerated fixpoint (stable ⊆ fixpoints, so these are the candidates
    that matter)."""
    program, db = case
    for model in enumerate_fixpoints(program, db, grounding="full", limit=6):
        reduct = is_stable_model(program, db, model, method="reduct")
        close = is_stable_model(program, db, model, method="close", grounding="full")
        gamma = is_stable_via_gamma(program, db, model)
        assert reduct == close == gamma


@settings(max_examples=60, **COMMON)
@given(case=propositional_cases())
def test_wf_total_implies_unique_stable_model(case):
    """[VRS] as cited in §2: a total well-founded model is the unique
    stable model."""
    program, db = case
    wf = well_founded_model(program, db, grounding="full")
    if not wf.is_total:
        return
    trues = wf.model.true_set()
    assert is_stable_model(program, db, trues)
    stables = [
        m
        for m in enumerate_fixpoints(program, db, grounding="full")
        if is_stable_model(program, db, m)
    ]
    assert stables == [trues]


@settings(max_examples=80, **COMMON)
@given(case=propositional_cases())
def test_wf_extends_fitting(case):
    """The Kripke-Kleene model is always a sub-model of the WF model."""
    program, db = case
    fitting = fitting_model(program, db)
    wf = well_founded_model(program, db, grounding="full").model
    for atom in fitting.true_atoms():
        assert wf.value(atom) is True
    for atom in fitting.false_atoms():
        assert wf.value(atom) is False
