"""Property tests at the signed-graph level: Lemma 1 and SCC machinery."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.scc import strongly_connected_components
from repro.graphs.signed_digraph import SignedDigraph
from repro.graphs.ties import analyze_component

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def signed_digraphs(draw, max_nodes=8, max_edges=20):
    n = draw(st.integers(2, max_nodes))
    edge_count = draw(st.integers(1, max_edges))
    graph = SignedDigraph()
    for node in range(n):
        graph.add_node(node)
    for _ in range(edge_count):
        graph.add_edge(
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, n - 1)),
            positive=draw(st.booleans()),
        )
    return graph


def brute_force_is_tie(graph, component):
    """Exponential oracle: try all 2^|C| side assignments."""
    members = list(component)
    succ = graph.successor_lists()
    for mask in range(1 << len(members)):
        side = {node: (mask >> i) & 1 for i, node in enumerate(members)}
        ok = True
        for u in members:
            for v, positive in succ[u]:
                if v not in side:
                    continue
                if positive and side[u] != side[v]:
                    ok = False
                elif not positive and side[u] == side[v]:
                    ok = False
                if not ok:
                    break
            if not ok:
                break
        if ok:
            return True
    return False


@settings(max_examples=200, **COMMON)
@given(graph=signed_digraphs())
def test_lemma1_against_brute_force(graph):
    """The linear tie test agrees with the exponential bipartition oracle
    on every SCC of random signed digraphs."""
    succ = graph.successor_lists()
    components = strongly_connected_components(
        graph.node_count, lambda u: (v for v, _ in succ[u])
    )
    for component in components:
        analysis = analyze_component(component, lambda u: succ[u])
        expected = brute_force_is_tie(graph, component)
        assert analysis.is_tie == expected
        if analysis.is_tie:
            # verify the produced partition satisfies Lemma 1's conditions
            sides = analysis.sides
            member_set = set(component)
            for u in component:
                for v, positive in succ[u]:
                    if v not in member_set:
                        continue
                    if positive:
                        assert sides[u] == sides[v]
                    else:
                        assert sides[u] != sides[v]
        else:
            # verify the witness: a closed simple cycle with odd negatives
            cycle = analysis.odd_cycle
            assert sum(1 for _, _, s in cycle if not s) % 2 == 1
            assert cycle[-1][1] == cycle[0][0]
            for (_, target, _), (source, _, _) in zip(cycle, cycle[1:]):
                assert target == source
            member_set = set(component)
            edge_set = {
                (u, v, s) for u in component for v, s in succ[u] if v in member_set
            }
            for arc in cycle:
                assert arc in edge_set


@settings(max_examples=200, **COMMON)
@given(graph=signed_digraphs(max_nodes=10, max_edges=30))
def test_scc_partition_properties(graph):
    """SCCs partition the nodes; Tarjan order is reverse topological."""
    succ = graph.successor_lists()
    components = strongly_connected_components(
        graph.node_count, lambda u: (v for v, _ in succ[u])
    )
    seen = [node for comp in components for node in comp]
    assert sorted(seen) == list(range(graph.node_count))
    position = {}
    for index, comp in enumerate(components):
        for node in comp:
            position[node] = index
    for u in range(graph.node_count):
        for v, _ in succ[u]:
            assert position[v] <= position[u]
