"""Differential properties pinning the compiled kernel to the seed kernel.

The production :class:`~repro.ground.state.GroundGraphState` (compiled CSR
adjacency, incremental unfounded-set counters, cached bottom-SCC
condensation) is driven in lockstep with the frozen pre-compilation
implementation (:class:`~repro.bench.seed_kernel.SeedGroundGraphState`) on
random programs, checking after every step:

* identical statuses, liveness and live-atom counts;
* identical greatest unfounded sets (incremental vs. per-call rebuild);
* identical bottom components and tie partitions (cached/refined
  condensation vs. per-call full Tarjan), and additionally vs. the
  ``full_recompute=True`` escape hatch of the production kernel itself;
* ``clone()`` independence: a mid-run clone is unaffected by the
  original's subsequent evolution and reaches the same final model as a
  fresh state driven with the same decisions.

Random inputs come from both the hypothesis strategies and the library's
own :mod:`repro.workloads.random_programs` generators (the latter also
being what the bench pipeline scales up).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.seed_kernel import SeedGroundGraphState
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState
from repro.workloads.random_programs import random_propositional_program

from tests.properties.strategies import propositional_programs

MAX_STEPS = 64


def _partition_key(component):
    """Label-independent view of one bottom component."""
    sides = None
    if component.is_tie:
        atom_sides = component.side_of_atom()
        side0 = frozenset(a for a, s in atom_sides.items() if s == 0)
        side1 = frozenset(a for a, s in atom_sides.items() if s == 1)
        sides = frozenset((side0, side1))
    return (
        frozenset(component.atom_ids),
        frozenset(component.rule_ids),
        component.is_tie,
        sides,
    )


def _bottoms_key(components):
    return {_partition_key(c) for c in components}


def _assert_states_agree(fast: GroundGraphState, slow: SeedGroundGraphState):
    assert fast.status == slow.status
    assert [bool(b) for b in fast.atom_alive] == [bool(b) for b in slow.atom_alive]
    assert [bool(b) for b in fast.rule_alive] == [bool(b) for b in slow.rule_alive]
    assert fast.live_atom_count == slow.live_atom_count
    assert fast.live_atom_ids() == slow.live_atom_ids()


def _canonical_tie_assignment(component):
    """Orientation depending only on atom ids, not on side labels:
    the side containing the smallest atom id becomes true."""
    atom_sides = component.side_of_atom()
    side0 = sorted(a for a, s in atom_sides.items() if s == 0)
    side1 = sorted(a for a, s in atom_sides.items() if s == 1)
    if not side0:
        return [], side1
    if not side1:
        return [], side0
    if side0[0] < side1[0]:
        return side0, side1
    return side1, side0


def _drive_lockstep(gp, *, check_full_recompute: bool = True, clone_at: int | None = None):
    """Run well-founded tie-breaking on both kernels, comparing each step.

    Returns ``(fast, clone_pair)`` where ``clone_pair`` is a
    ``(fast_clone, step)`` snapshot taken before step ``clone_at``.
    """
    fast = GroundGraphState(gp)
    slow = SeedGroundGraphState(gp)
    fast.close()
    slow.close()
    clone_pair = None
    for step in range(MAX_STEPS):
        _assert_states_agree(fast, slow)
        if clone_at is not None and step == clone_at:
            clone_pair = (fast.clone(), [row for row in fast.status])

        unfounded_fast = fast.unfounded_atoms()
        unfounded_slow = slow.unfounded_atoms()
        assert unfounded_fast == unfounded_slow
        if unfounded_fast:
            fast.assign_many(unfounded_fast, FALSE, ("unfounded", step))
            slow.assign_many(unfounded_slow, FALSE, ("unfounded", step))
            fast.close()
            slow.close()
            continue

        bottoms_fast = fast.bottom_components_live()
        bottoms_slow = slow.bottom_components_live()
        assert _bottoms_key(bottoms_fast) == _bottoms_key(bottoms_slow)
        if check_full_recompute:
            bottoms_full = fast.clone().bottom_components_live(full_recompute=True)
            assert _bottoms_key(bottoms_fast) == _bottoms_key(bottoms_full)

        ties = [c for c in bottoms_fast if c.is_tie]
        if not ties:
            break
        tie_fast = min(ties, key=lambda c: min(c.atom_ids))
        tie_slow = min(
            (c for c in bottoms_slow if c.is_tie), key=lambda c: min(c.atom_ids)
        )
        true_atoms, false_atoms = _canonical_tie_assignment(tie_fast)
        true_slow, false_slow = _canonical_tie_assignment(tie_slow)
        assert (sorted(true_atoms), sorted(false_atoms)) == (
            sorted(true_slow),
            sorted(false_slow),
        )
        for state, t, f in ((fast, true_atoms, false_atoms), (slow, true_slow, false_slow)):
            state.assign_many(t, TRUE, ("tie", step))
            state.assign_many(f, FALSE, ("tie", step))
            state.close()
    else:  # pragma: no cover - MAX_STEPS is far above any reachable depth
        pytest.fail("lockstep drive did not converge")
    _assert_states_agree(fast, slow)
    return fast, clone_pair


@settings(max_examples=60, deadline=None)
@given(program=propositional_programs())
def test_incremental_queries_match_seed_kernel(program):
    gp = ground(program, Database(), mode="full")
    _drive_lockstep(gp)


@settings(max_examples=40, deadline=None)
@given(
    program=propositional_programs(),
    clone_at=st.integers(min_value=0, max_value=3),
)
def test_clone_independence_under_interleaving(program, clone_at):
    gp = ground(program, Database(), mode="full")
    _, clone_pair = _drive_lockstep(gp, check_full_recompute=False, clone_at=clone_at)
    if clone_pair is None:
        return  # the run converged before the clone point
    clone, snapshot = clone_pair
    # The original ran to completion after the clone was taken; the clone
    # must still be exactly at the snapshot...
    assert clone.status == snapshot
    # ...and driving the clone (against a fresh seed state fast-forwarded
    # by the same canonical decisions) must agree step for step.
    replay = SeedGroundGraphState(gp)
    replay.close()
    for step in range(MAX_STEPS):
        if replay.status == snapshot:
            break
        unfounded = replay.unfounded_atoms()
        if unfounded:
            replay.assign_many(unfounded, FALSE, ("unfounded", step))
            replay.close()
            continue
        ties = [c for c in replay.bottom_components_live() if c.is_tie]
        assert ties, "replay diverged from the cloned trajectory"
        tie = min(ties, key=lambda c: min(c.atom_ids))
        t, f = _canonical_tie_assignment(tie)
        replay.assign_many(t, TRUE, ("tie", step))
        replay.assign_many(f, FALSE, ("tie", step))
        replay.close()
    for step in range(MAX_STEPS):
        _assert_states_agree(clone, replay)
        unfounded = clone.unfounded_atoms()
        assert unfounded == replay.unfounded_atoms()
        if unfounded:
            clone.assign_many(unfounded, FALSE, ("unfounded", step))
            replay.assign_many(unfounded, FALSE, ("unfounded", step))
            clone.close()
            replay.close()
            continue
        bottoms = clone.bottom_components_live()
        assert _bottoms_key(bottoms) == _bottoms_key(replay.bottom_components_live())
        ties = [c for c in bottoms if c.is_tie]
        if not ties:
            break
        tie = min(ties, key=lambda c: min(c.atom_ids))
        t, f = _canonical_tie_assignment(tie)
        for state in (clone, replay):
            state.assign_many(t, TRUE, ("tie", step))
            state.assign_many(f, FALSE, ("tie", step))
            state.close()
    _assert_states_agree(clone, replay)


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_generator_lockstep(seed):
    """The bench-scale generator distribution, pinned at small sizes."""
    program = random_propositional_program(
        n_predicates=8,
        n_rules=14,
        max_body=3,
        negation_probability=0.45,
        edb_predicates=2,
        seed=seed,
    )
    gp = ground(program, Database(), mode="full")
    _drive_lockstep(gp)


@pytest.mark.parametrize("seed", range(6))
def test_relevant_grounding_lockstep(seed):
    """Same differential drive over the relevant grounder's output."""
    program = random_propositional_program(
        n_predicates=7,
        n_rules=12,
        negation_probability=0.35,
        edb_predicates=2,
        seed=100 + seed,
    )
    gp = ground(program, Database(), mode="relevant")
    _drive_lockstep(gp)
