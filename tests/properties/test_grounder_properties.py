"""Differential properties pinning the compiled grounder to the seed grounder.

The production parse→ground pipeline (interned constants, compiled
:class:`~repro.engine.plan.JoinPlan` schedules, direct-to-CSR emission —
see :mod:`repro.datalog.grounding`) is compared against the frozen
pre-compilation pipeline (:mod:`repro.bench.seed_grounder`) on every
workload family and on the :mod:`repro.workloads.random_programs`
distributions, in both ``full`` and ``relevant`` modes, checking:

* identical ground **atoms** (as atom objects — the two grounders may
  assign dense ids in different orders);
* identical ground **rule instances** (head / positive body / negative
  body atoms, source rule index, substitution);
* identical **U\\*** upper-bound models (compiled semi-naive with
  indexed deltas vs. the seed's per-round full rescan);
* identical **models**: the production kernel is driven to the
  well-founded tie-breaking fixpoint on *both* groundings in lockstep,
  with every unfounded set and tie decision transported through the
  atom bijection — statuses must correspond step for step.
"""

from __future__ import annotations

import pytest

from repro.bench.seed_grounder import seed_ground, seed_upper_bound_model
from repro.datalog.database import Database
from repro.datalog.grounding import ground, universe_of
from repro.engine.seminaive import upper_bound_model
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState
from repro.workloads import families
from repro.workloads.random_programs import (
    random_call_consistent_program,
    random_propositional_program,
    random_stratified_program,
)

MAX_STEPS = 64

FAMILY_CASES = {
    "win_move_line": lambda: families.win_move_line(9),
    "win_move_cycle": lambda: families.win_move_cycle(8),
    "unfounded_tower": lambda: families.unfounded_tower(5),
    "tie_chain": lambda: families.tie_chain(4),
    "negation_tower": lambda: families.negation_tower(6),
    "layered_games": lambda: families.layered_games(3, 4),
    "committee": lambda: families.committee(5),
    "grounded_argumentation": lambda: families.grounded_argumentation(13),
    "adversarial_scc": lambda: families.adversarial_scc(8),
}


def _canonical_rules(gp):
    """Id-independent view of the ground rule instances."""
    atom = gp.atoms.atom
    return frozenset(
        (
            atom(gr.head),
            frozenset(atom(a) for a in gr.pos),
            frozenset(atom(a) for a in gr.neg),
            gr.rule_index,
            gr.substitution,
        )
        for gr in gp.rules
    )


def _bijection(gp_new, gp_seed):
    """Map new atom ids to seed atom ids; asserts the atom sets agree."""
    new_atoms = {gp_new.atoms.atom(i): i for i in range(gp_new.atom_count)}
    seed_atoms = {gp_seed.atoms.atom(i): i for i in range(gp_seed.atom_count)}
    assert set(new_atoms) == set(seed_atoms)
    return {i: seed_atoms[a] for a, i in new_atoms.items()}


def _assert_same_grounding(program, database, mode):
    gp_new = ground(program, database, mode=mode)
    gp_seed = seed_ground(program, database, mode=mode)
    to_seed = _bijection(gp_new, gp_seed)
    assert gp_new.rule_count == gp_seed.rule_count
    assert _canonical_rules(gp_new) == _canonical_rules(gp_seed)
    _drive_mapped(gp_new, gp_seed, to_seed)
    return gp_new, gp_seed


def _assert_statuses_correspond(state_new, state_seed, to_seed):
    status_new, status_seed = state_new.status, state_seed.status
    for i, j in to_seed.items():
        assert status_new[i] == status_seed[j]
    assert state_new.live_atom_count == state_seed.live_atom_count


def _tie_sides(component):
    atom_sides = component.side_of_atom()
    side0 = frozenset(a for a, s in atom_sides.items() if s == 0)
    side1 = frozenset(a for a, s in atom_sides.items() if s == 1)
    return side0, side1


def _drive_mapped(gp_new, gp_seed, to_seed):
    """Drive WF tie-breaking on both groundings, decisions mapped via atoms."""
    state_new = GroundGraphState(gp_new)
    state_seed = GroundGraphState(gp_seed)
    state_new.close()
    state_seed.close()
    for step in range(MAX_STEPS):
        _assert_statuses_correspond(state_new, state_seed, to_seed)
        unfounded_new = state_new.unfounded_atoms()
        unfounded_seed = state_seed.unfounded_atoms()
        assert {to_seed[a] for a in unfounded_new} == set(unfounded_seed)
        if unfounded_new:
            state_new.assign_many(unfounded_new, FALSE, ("unfounded", step))
            state_seed.assign_many(unfounded_seed, FALSE, ("unfounded", step))
            state_new.close()
            state_seed.close()
            continue

        bottoms_new = state_new.bottom_components_live()
        bottoms_seed = state_seed.bottom_components_live()
        ties_new = [c for c in bottoms_new if c.is_tie]
        ties_seed = [c for c in bottoms_seed if c.is_tie]
        assert len(ties_new) == len(ties_seed)
        if not ties_new:
            break
        # Orient the tie containing the smallest new atom id; the seed
        # grounding must expose the same component (mapped) with the same
        # side partition, up to the K/L label swap.
        tie = min(ties_new, key=lambda c: min(c.atom_ids))
        side0, side1 = _tie_sides(tie)
        mapped0 = frozenset(to_seed[a] for a in side0)
        mapped1 = frozenset(to_seed[a] for a in side1)
        seed_tie = next(
            c for c in ties_seed if {to_seed[a] for a in tie.atom_ids} == set(c.atom_ids)
        )
        seed_side0, seed_side1 = _tie_sides(seed_tie)
        assert {mapped0, mapped1} == {frozenset(seed_side0), frozenset(seed_side1)}
        if not side0 or not side1:
            true_new, false_new = frozenset(), side0 or side1
        else:
            true_new, false_new = (side0, side1) if min(side0) < min(side1) else (side1, side0)
        state_new.assign_many(sorted(true_new), TRUE, ("tie", step))
        state_new.assign_many(sorted(false_new), FALSE, ("tie", step))
        state_seed.assign_many(sorted(to_seed[a] for a in true_new), TRUE, ("tie", step))
        state_seed.assign_many(sorted(to_seed[a] for a in false_new), FALSE, ("tie", step))
        state_new.close()
        state_seed.close()
    else:  # pragma: no cover - MAX_STEPS is far above any reachable depth
        pytest.fail("mapped lockstep drive did not converge")
    _assert_statuses_correspond(state_new, state_seed, to_seed)


def _assert_same_upper_bound(program, database):
    universe = universe_of(program, database)
    new = upper_bound_model(program, database, universe=universe)
    seed = seed_upper_bound_model(program, database, universe=universe)
    preds = set(new.predicates()) | {a.predicate for a in seed.atoms()}
    for pred in preds:
        assert new.rows(pred) == seed.rows(pred), pred


@pytest.mark.parametrize("name", sorted(FAMILY_CASES))
@pytest.mark.parametrize("mode", ["full", "relevant"])
def test_families_ground_identically(name, mode):
    program, database = FAMILY_CASES[name]()
    _assert_same_grounding(program, database, mode)


@pytest.mark.parametrize("name", sorted(FAMILY_CASES))
def test_families_same_upper_bound(name):
    program, database = FAMILY_CASES[name]()
    _assert_same_upper_bound(program, database)


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("mode", ["full", "relevant"])
def test_random_propositional_lockstep(seed, mode):
    program = random_propositional_program(
        n_predicates=8,
        n_rules=14,
        max_body=3,
        negation_probability=0.45,
        edb_predicates=2,
        seed=seed,
    )
    _assert_same_grounding(program, Database(), mode)
    _assert_same_upper_bound(program, Database())


@pytest.mark.parametrize("seed", range(4))
def test_random_call_consistent_lockstep(seed):
    program = random_call_consistent_program(
        n_predicates=7, n_rules=12, edb_predicates=2, seed=50 + seed
    )
    _assert_same_grounding(program, Database(), "relevant")


@pytest.mark.parametrize("seed", range(4))
def test_random_stratified_lockstep(seed):
    program = random_stratified_program(n_predicates=8, n_rules=12, seed=90 + seed)
    _assert_same_grounding(program, Database(), "relevant")


@pytest.mark.parametrize("mode", ["full", "relevant", "edb"])
def test_first_order_database_workload(mode):
    """A non-propositional EDB workload through all three modes."""
    program, database = families.win_move_line(6)
    gp_new = ground(program, database, mode=mode)
    gp_seed = seed_ground(program, database, mode=mode)
    _bijection(gp_new, gp_seed)
    assert _canonical_rules(gp_new) == _canonical_rules(gp_seed)
