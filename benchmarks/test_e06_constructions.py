"""E6/E7 — Theorem 2/3 constructions: build the variant, prove UNSAT.

Scales the odd cycle length k and times (a) constructing the alphabetic
variant and (b) the exhaustive SAT proof that it has no fixpoint.  The
construction is linear in the program; the UNSAT proof is the expensive
part (NP oracle), which is the paper's point: checking *structural*
totality (E8) is linear while checking totality is hard.
"""

import pytest

from repro.constructions.theorem2 import theorem2_constant_free_variant, theorem2_variant
from repro.constructions.theorem3 import theorem3_variant
from repro.datalog.atoms import Atom, Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.semantics.completion import has_fixpoint


def odd_cycle_program(k):
    """A k-predicate negative cycle (odd k) plus an EDB guard in each rule."""
    assert k % 2 == 1
    rules = []
    for i in range(k):
        head = Atom(f"c{i}")
        rules.append(
            Rule(
                head,
                (
                    Literal(Atom(f"c{(i + 1) % k}"), False),
                    Literal(Atom("e"), True),
                ),
            )
        )
    return Program(rules)


@pytest.mark.bench
@pytest.mark.parametrize("k", [3, 9, 21])
def test_theorem2_build_and_refute(benchmark, k):
    program = odd_cycle_program(k)

    def build_and_refute():
        variant, delta = theorem2_variant(program)
        assert not has_fixpoint(variant, delta, grounding="full")
        return variant

    variant = benchmark(build_and_refute)
    assert len(variant) == len(program)
    benchmark.extra_info["cycle_length"] = k


@pytest.mark.bench
@pytest.mark.parametrize("k", [3, 9])
def test_theorem2_constant_free_build_and_refute(benchmark, k):
    program = odd_cycle_program(k)

    def build_and_refute():
        variant, delta = theorem2_constant_free_variant(program)
        assert not has_fixpoint(variant, delta, grounding="full")
        return variant

    variant = benchmark(build_and_refute)
    assert len(variant.constants) == 0
    benchmark.extra_info["cycle_length"] = k


@pytest.mark.bench
@pytest.mark.parametrize("k", [3, 9, 21])
def test_theorem3_build_and_refute(benchmark, k):
    program = odd_cycle_program(k)

    def build_and_refute():
        variant, delta = theorem3_variant(program)
        assert not has_fixpoint(variant, delta, grounding="full")
        return variant

    variant = benchmark(build_and_refute)
    assert all(arity == 2 for arity in variant.arities.values())
    benchmark.extra_info["cycle_length"] = k
