"""E3 — the tie-breaking interpreters are polynomial (§3, Lemmas 2-3).

Series:

* ``tie_chain(n)`` — n sequential free choices: the worst case for the
  bottom-SCC recomputation in the main loop (expected ~quadratic);
* ``committee(n)`` — n independent ties, broken one per iteration;
* ``win_move_cycle(2k)`` — one big even draw cycle: a single tie whose
  Lemma-1 partition spans the whole ground graph.

Each run asserts totality (these are all call-consistent workloads —
Theorem 1 guarantees success) and, on a sample, stability (Lemma 3).
"""

import pytest

from repro.datalog.grounding import ground
from repro.semantics.stable import is_stable_model
from repro.semantics.tie_breaking import pure_tie_breaking, well_founded_tie_breaking
from repro.workloads.families import committee, tie_chain, win_move_cycle


@pytest.mark.bench
@pytest.mark.parametrize("n", [5, 15, 45])
def test_wftb_tie_chain(benchmark, n):
    program, db = tie_chain(n)
    gp = ground(program, db, mode="full")

    def run():
        return well_founded_tie_breaking(program, db, ground_program=gp)

    result = benchmark(run)
    assert result.is_total and result.free_choice_count == n
    benchmark.extra_info["choices"] = result.free_choice_count


@pytest.mark.bench
@pytest.mark.parametrize("n", [10, 40, 160])
def test_wftb_committee(benchmark, n):
    program, db = committee(n)
    gp = ground(program, db, mode="relevant")

    def run():
        return well_founded_tie_breaking(program, db, ground_program=gp)

    result = benchmark(run)
    assert result.is_total
    assert result.free_choice_count == n
    benchmark.extra_info["members"] = n


@pytest.mark.bench
@pytest.mark.parametrize("n", [20, 80, 320])
def test_pure_tb_even_draw_cycle(benchmark, n):
    program, db = win_move_cycle(n)
    gp = ground(program, db, mode="relevant")

    def run():
        return pure_tie_breaking(program, db, ground_program=gp)

    result = benchmark(run)
    assert result.is_total
    winners = sum(1 for a in result.model.true_set() if a.predicate == "win")
    assert winners == n // 2  # alternating around the even cycle
    benchmark.extra_info["cycle"] = n


@pytest.mark.bench
def test_wftb_results_are_stable(benchmark):
    """Lemma 3 spot check folded into the suite (small size: check is SAT-free
    but join-heavy)."""
    program, db = committee(6)

    def run():
        result = well_founded_tie_breaking(program, db, grounding="relevant")
        assert is_stable_model(program, db, result.model.true_set())
        return result

    result = benchmark(run)
    assert result.is_total
