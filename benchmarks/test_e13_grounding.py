"""E13 — grounding ablation: full vs relevant vs edb.

The paper's ground graph ``G(Π, Δ)`` is the full instantiation; the
reproduction's relevant/edb grounders are the enabling substitution for
running its constructions at scale.  This bench quantifies the gap:

* on win-move boards the full grounder is |U|² while relevant follows the
  move relation;
* on the Theorem 6 program the full grounder is *infeasible* (|U|^k per
  rule with k ≈ 10) — the bench records the predicted instance count and
  times relevant/edb only.

Also asserts WF-model equality across groundings (the soundness claim).
"""

import pytest

from repro.constructions.counter_machines import alternating_machine
from repro.constructions.theorem6 import machine_to_program, natural_database
from repro.datalog.grounding import ground
from repro.semantics.well_founded import well_founded_model
from repro.workloads.families import win_move_line


@pytest.mark.bench
@pytest.mark.parametrize("mode", ["full", "relevant", "edb"])
def test_win_move_grounding_modes(benchmark, mode):
    program, db = win_move_line(40)

    gp = benchmark(ground, program, db, mode=mode)
    benchmark.extra_info["instances"] = gp.rule_count
    benchmark.extra_info["atoms"] = gp.atom_count


@pytest.mark.bench
def test_wf_equivalence_across_groundings(benchmark):
    program, db = win_move_line(25)

    def compare():
        full = well_founded_model(program, db, grounding="full")
        relevant = well_founded_model(program, db, grounding="relevant")
        assert full.model.agrees_with(relevant.model)
        return full

    result = benchmark(compare)
    assert result.is_total


@pytest.mark.bench
@pytest.mark.parametrize("mode", ["relevant", "edb"])
def test_counter_machine_grounding(benchmark, mode):
    program = machine_to_program(alternating_machine())
    db = natural_database(8)

    gp = benchmark(ground, program, db, mode=mode)
    benchmark.extra_info["instances"] = gp.rule_count

    # The full grounder would need |U|^k instances for the k-variable
    # transition rules; record the prediction instead of attempting it.
    universe = len(gp.universe)
    worst = max(len(r.variables()) for r in program.rules)
    benchmark.extra_info["full_would_need"] = f"{len(program)} rules x up to {universe}^{worst}"
