"""E14 — exact fixpoint/stable enumeration via the SAT substrate.

The §2 observation that fixpoint existence is NP-complete means the exact
engine must search; this bench tracks:

* fixpoint counting on ``committee(n)`` (exactly 2^n models — exponential
  in the cleanest possible way);
* single-fixpoint decisions on random propositional programs across sizes
  (the practical cost of the NP oracle used throughout E6/E7/E11);
* the stable-model filter (reduct least-model check per candidate).
"""

import pytest

from repro.semantics.completion import count_fixpoints, has_fixpoint
from repro.semantics.stable import enumerate_stable_models
from repro.workloads.families import committee
from repro.workloads.random_programs import random_propositional_program


@pytest.mark.bench
@pytest.mark.parametrize("n", [3, 6, 9])
def test_fixpoint_counting_exponential(benchmark, n):
    program, db = committee(n)

    count = benchmark(count_fixpoints, program, db, grounding="relevant")
    assert count == 2**n
    benchmark.extra_info["models"] = count


@pytest.mark.bench
@pytest.mark.parametrize("n_rules", [20, 40, 80])
def test_fixpoint_decision_random_programs(benchmark, n_rules):
    programs = [
        random_propositional_program(
            n_rules // 2, n_rules, negation_probability=0.4, seed=seed
        )
        for seed in range(10)
    ]

    def sweep():
        return sum(has_fixpoint(p, grounding="full") for p in programs)

    sat_count = benchmark(sweep)
    assert 0 <= sat_count <= len(programs)
    benchmark.extra_info["sat_rate"] = sat_count / len(programs)


@pytest.mark.bench
def test_stable_model_enumeration(benchmark):
    program, db = committee(4)

    def enumerate_all():
        return list(enumerate_stable_models(program, db, grounding="relevant"))

    models = benchmark(enumerate_all)
    assert len(models) == 2**4  # every committee split is stable
