"""E1 — Lemma 1: the tie test runs in linear time.

Builds strongly connected signed graphs of growing size and times
``analyze_component``.  Series: a large even ring with chords (a tie) and
the same ring with one sign flipped (not a tie — includes the simple-odd-
cycle witness extraction).  The claim to observe: time per edge is flat
across sizes (linearity).
"""

import pytest

from repro.graphs.ties import analyze_component

SIZES = [1_000, 4_000, 16_000]


def ring_with_chords(n, *, odd):
    """A ring 0→1→...→0 alternating signs, plus chords every 7 nodes.

    With an even number of negative ring edges the graph is a tie; ``odd``
    flips one chord sign pattern to create an odd cycle.
    """
    succ = [[] for _ in range(n)]
    for i in range(n):
        succ[i].append(((i + 1) % n, i % 2 == 0))
    negatives_on_ring = n // 2
    if negatives_on_ring % 2 == 1:
        succ[n - 1][0] = (0, True)
    for i in range(0, n - 8, 7):
        # chord parallel to the 2-step ring path, sign chosen to agree
        sign = not odd if i % 14 == 0 else (succ[i][0][1] == succ[(i + 1) % n][0][1])
        succ[i].append(((i + 2) % n, sign))
    return succ


@pytest.mark.bench
@pytest.mark.parametrize("n", SIZES)
def test_tie_detection_on_tie(benchmark, n):
    succ = ring_with_chords(n, odd=False)
    component = list(range(n))
    analysis = analyze_component(component, lambda u: succ[u])
    # sanity on the witness/partition before timing
    if analysis.is_tie:
        assert set(analysis.sides) == set(component)
    result = benchmark(analyze_component, component, lambda u: succ[u])
    edge_count = sum(len(s) for s in succ)
    benchmark.extra_info["nodes"] = n
    benchmark.extra_info["edges"] = edge_count
    benchmark.extra_info["is_tie"] = result.is_tie


@pytest.mark.bench
@pytest.mark.parametrize("n", SIZES)
def test_tie_detection_with_odd_witness(benchmark, n):
    succ = ring_with_chords(n, odd=False)
    # plant a single odd chord: positive 1-step chord next to a negative edge
    succ[0].append((1, not succ[0][0][1]))
    component = list(range(n))
    analysis = analyze_component(component, lambda u: succ[u])
    assert not analysis.is_tie
    negatives = sum(1 for _, _, positive in analysis.odd_cycle if not positive)
    assert negatives % 2 == 1
    benchmark(analyze_component, component, lambda u: succ[u])
    benchmark.extra_info["nodes"] = n
    benchmark.extra_info["odd_cycle_length"] = len(analysis.odd_cycle)
