"""E16 — the bounded nontotality search (the §5 r.e. procedure).

Times the guess-and-verify loop: database enumeration with symmetry
reduction plus one SAT call each.  Shapes: refuting a non-total program is
fast (a small witness exists — the search is output-sensitive); clearing a
total program pays for the whole bounded database space, growing
exponentially with the constant budget (Theorem 6 guarantees this cannot
be escaped in general).
"""

import pytest

from repro.analysis.totality_search import search_nontotality_witness
from repro.datalog.parser import parse_program

NON_TOTAL = "win(X) :- move(X, Y), not win(Y)."
TOTAL = "p(X) :- not q(X), e(X). q(X) :- not p(X), e(X)."
TOTAL_DESPITE_ODD = "p(a) :- not p(X), e(b)."


@pytest.mark.bench
def test_refute_win_move(benchmark):
    program = parse_program(NON_TOTAL)

    witness = benchmark(search_nontotality_witness, program, max_constants=1)
    assert witness is not None
    benchmark.extra_info["witness_facts"] = len(witness)


@pytest.mark.bench
@pytest.mark.parametrize("max_constants", [1, 2])
def test_clear_total_program(benchmark, max_constants):
    program = parse_program(TOTAL)

    witness = benchmark(
        search_nontotality_witness, program, max_constants=max_constants
    )
    assert witness is None
    benchmark.extra_info["constant_budget"] = max_constants


@pytest.mark.bench
def test_clear_paper_program_1(benchmark):
    """The total-but-not-structurally-total case: every database must be
    cleared by SAT, none refutes."""
    program = parse_program(TOTAL_DESPITE_ODD)

    witness = benchmark(search_nontotality_witness, program, max_constants=1)
    assert witness is None
