#!/usr/bin/env python3
"""Render the EXPERIMENTS.md timing table from a pytest-benchmark JSON dump.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/render_timing_table.py bench.json
"""

import json
import sys
from collections import defaultdict


def human(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def main(path: str) -> None:
    with open(path) as handle:
        payload = json.load(handle)
    groups: dict[str, list] = defaultdict(list)
    for bench in payload["benchmarks"]:
        module = bench["fullname"].split("::")[0].split("/")[-1]
        groups[module].append(bench)
    print("| experiment module | benchmark | mean |")
    print("|---|---|---|")
    for module in sorted(groups):
        for bench in sorted(groups[module], key=lambda b: b["name"]):
            mean = human(bench["stats"]["mean"])
            print(f"| {module} | `{bench['name']}` | {mean} |")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench.json")
