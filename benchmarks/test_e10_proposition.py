"""E10 — the §5 Proposition: totality checking blows up (it is Π₂ᵖ-complete).

Times the brute-force totality decision on the reduction programs of
growing ∀∃-CNF instances.  The observed exponential growth in the
database-enumeration dimension is the *expected shape* — membership in
Π₂ᵖ is exactly "for all databases, exists a fixpoint", and the bench
records how the 2^(EDB+IDB) factor dominates.
"""

import pytest

from repro.constructions.proposition import formula_to_program, is_total_propositional
from repro.constructions.qbf import forall_exists_holds, random_formula


@pytest.mark.bench
@pytest.mark.parametrize("n_vars", [(1, 1), (2, 1), (2, 2)])
def test_totality_decision_scaling(benchmark, n_vars):
    n_x, n_y = n_vars
    formula = random_formula(n_x, n_y, n_x + n_y, seed=13 * n_x + n_y)
    program = formula_to_program(formula)
    expected = forall_exists_holds(formula)

    result = benchmark(is_total_propositional, program, nonuniform=True)
    assert result == expected
    benchmark.extra_info["x_vars"] = n_x
    benchmark.extra_info["y_vars"] = n_y
    benchmark.extra_info["databases"] = 2 ** len(program.edb_predicates)


@pytest.mark.bench
def test_uniform_totality_is_harder(benchmark):
    """The uniform case enumerates 2^(EDB+IDB) databases instead of 2^EDB."""
    formula = random_formula(1, 2, 3, seed=5)
    program = formula_to_program(formula)
    expected = forall_exists_holds(formula)

    result = benchmark(is_total_propositional, program, nonuniform=False)
    assert result == expected
    benchmark.extra_info["databases"] = 2 ** (
        len(program.edb_predicates) + len(program.idb_predicates)
    )
