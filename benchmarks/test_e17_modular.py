"""E17 — ablation: modular (split) vs monolithic well-founded evaluation.

The well-founded semantics splits along the program-graph condensation;
this bench quantifies what splitting buys on a layered workload.  Expected
(and honestly reported) shape at reproduction scale: the *relevant*
grounder already confines each rule to its own layer's facts, so the
monolithic evaluation is not paying for cross-layer products and the
modular pass mostly adds per-component grounding overhead — the split is
an organizational win (provenance, incremental re-evaluation of single
components), not a raw-speed one, until layers grow much larger.
"""

import pytest

from repro.semantics.modular import modular_well_founded_model
from repro.semantics.well_founded import well_founded_model
from repro.workloads.families import layered_games


@pytest.mark.bench
@pytest.mark.parametrize("layers", [4, 8, 16])
def test_monolithic_layered(benchmark, layers):
    program, db = layered_games(layers, 10)

    result = benchmark(
        lambda: well_founded_model(program, db, grounding="relevant")
    )
    assert result.is_total
    benchmark.extra_info["implementation"] = "monolithic"
    benchmark.extra_info["layers"] = layers


@pytest.mark.bench
@pytest.mark.parametrize("layers", [4, 8, 16])
def test_modular_layered(benchmark, layers):
    program, db = layered_games(layers, 10)
    monolithic = well_founded_model(program, db, grounding="relevant")

    result = benchmark(
        lambda: modular_well_founded_model(program, db, grounding="relevant")
    )
    # differential check while timing
    assert result.is_total == monolithic.is_total
    for atom in monolithic.model.true_atoms():
        assert result.value(atom) is True
    benchmark.extra_info["implementation"] = "modular"
    benchmark.extra_info["components"] = result.component_count
