"""E11 — Theorem 6: the counter-machine reduction at growing horizons.

Times the full pipeline — reduction program construction, EDB-joined
grounding, and the SAT fixpoint decision — for halting machines of growing
runtimes and looping machines over growing natural databases.  Shape to
observe: the no-fixpoint verdict for halting machines at every horizon
that covers the run; fixpoints for the looping machine at every horizon.
"""

import pytest

from repro.constructions.counter_machines import alternating_machine, bounded_counter_machine
from repro.constructions.theorem6 import machine_to_program, natural_database
from repro.datalog.grounding import ground
from repro.semantics.completion import has_fixpoint
from repro.semantics.well_founded import well_founded_model


@pytest.mark.bench
@pytest.mark.parametrize("n", [2, 4, 8])
def test_halting_machine_refutation(benchmark, n):
    machine = bounded_counter_machine(n)
    program = machine_to_program(machine)
    horizon = max(machine.run(4 * n).steps, machine.halting_state)
    db = natural_database(horizon)

    def decide():
        return has_fixpoint(program, db, grounding="edb")

    result = benchmark(decide)
    assert result is False  # the halting run kills every fixpoint
    benchmark.extra_info["halt_time"] = horizon
    benchmark.extra_info["rules"] = len(program)


@pytest.mark.bench
@pytest.mark.parametrize("horizon", [4, 8, 16])
def test_looping_machine_fixpoint(benchmark, horizon):
    program = machine_to_program(alternating_machine())
    db = natural_database(horizon)

    def decide():
        return has_fixpoint(program, db, grounding="edb")

    result = benchmark(decide)
    assert result is True
    benchmark.extra_info["horizon"] = horizon


@pytest.mark.bench
@pytest.mark.parametrize("horizon", [4, 8, 16])
def test_simulation_via_well_founded(benchmark, horizon):
    """The WF interpreter as a machine simulator (relevant grounding)."""
    machine = alternating_machine()
    program = machine_to_program(machine)
    db = natural_database(horizon)
    gp = ground(program, db, mode="relevant")

    def run():
        return well_founded_model(program, db, ground_program=gp)

    result = benchmark(run)
    assert result.is_total
    states = sum(1 for a in result.model.true_set() if a.predicate == "state")
    assert states == horizon + 1  # one configuration per time step
    benchmark.extra_info["instances"] = gp.rule_count
