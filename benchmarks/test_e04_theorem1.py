"""E4 — Theorem 1: call-consistent programs always reach a total model.

Sweeps random call-consistent programs (no odd cycle, by construction)
across sizes and random databases; every tie-breaking run must be total,
for both deterministic orientations.  The benchmark times the verification
sweep and records the observed success rates — the paper's claim is a
100% success column, contrasted with the unrestricted-program column where
the interpreters may stall.
"""

import pytest

from repro.analysis.structural import is_call_consistent
from repro.semantics.choices import FirstSideTrue, SecondSideTrue
from repro.semantics.tie_breaking import well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model
from repro.workloads.random_programs import (
    random_call_consistent_program,
    random_propositional_program,
)


def success_rate(programs, policy):
    total = 0
    for program in programs:
        run = well_founded_tie_breaking(program, policy=policy, grounding="full")
        total += run.is_total
    return total / len(programs)


@pytest.mark.bench
@pytest.mark.parametrize("n_rules", [20, 60])
def test_call_consistent_always_total(benchmark, n_rules):
    programs = [
        random_call_consistent_program(10, n_rules, seed=seed) for seed in range(20)
    ]
    assert all(is_call_consistent(p) for p in programs)

    def sweep():
        return (
            success_rate(programs, FirstSideTrue()),
            success_rate(programs, SecondSideTrue()),
        )

    first, second = benchmark(sweep)
    assert first == 1.0 and second == 1.0  # Theorem 1, both orientations
    benchmark.extra_info["success_rate_first"] = first
    benchmark.extra_info["success_rate_second"] = second


@pytest.mark.bench
def test_unrestricted_programs_stall_sometimes(benchmark):
    """The contrast column: with odd cycles allowed, tie-breaking totality
    drops below 100% (and the well-founded baseline is lower still)."""
    programs = [
        random_propositional_program(8, 16, negation_probability=0.5, seed=seed)
        for seed in range(30)
    ]

    def sweep():
        tb_total = sum(
            well_founded_tie_breaking(p, grounding="full").is_total for p in programs
        )
        wf_total = sum(
            well_founded_model(p, grounding="full").is_total for p in programs
        )
        return tb_total, wf_total

    tb_total, wf_total = benchmark(sweep)
    assert tb_total <= len(programs)
    assert wf_total <= tb_total  # WFTB extends WF: it never does worse
    benchmark.extra_info["tb_total_rate"] = tb_total / len(programs)
    benchmark.extra_info["wf_total_rate"] = wf_total / len(programs)
