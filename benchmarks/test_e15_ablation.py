"""E15 — ablation: incremental worklist close vs the paper-literal scan.

The production ``GroundGraphState`` maintains per-node counters and
propagates deletions through a worklist (O(edges) per close); the
reference implementation re-scans the whole graph per change, exactly as
the paper's prose describes the operations.  This ablation quantifies the
gap that justifies the engineering — and doubles as a differential test,
asserting both produce identical well-founded models while timing them.
"""

import pytest

from repro.datalog.grounding import ground
from repro.ground.reference import naive_well_founded
from repro.semantics.well_founded import well_founded_model
from repro.workloads.families import unfounded_tower, win_move_line


@pytest.mark.bench
@pytest.mark.parametrize("n", [20, 60])
def test_worklist_close_win_move(benchmark, n):
    program, db = win_move_line(n)
    gp = ground(program, db, mode="relevant")

    result = benchmark(lambda: well_founded_model(program, db, ground_program=gp))
    assert result.is_total
    benchmark.extra_info["implementation"] = "worklist"


@pytest.mark.bench
@pytest.mark.parametrize("n", [20, 60])
def test_naive_close_win_move(benchmark, n):
    program, db = win_move_line(n)
    gp = ground(program, db, mode="relevant")
    fast = well_founded_model(program, db, ground_program=gp)

    slow = benchmark(lambda: naive_well_founded(gp))
    assert slow.status == fast.model.status  # differential check while timing
    benchmark.extra_info["implementation"] = "naive-scan"


@pytest.mark.bench
@pytest.mark.parametrize("n", [8, 16])
def test_worklist_close_unfounded_tower(benchmark, n):
    program, db = unfounded_tower(n)
    gp = ground(program, db, mode="full")

    result = benchmark(lambda: well_founded_model(program, db, ground_program=gp))
    assert result.iterations >= n
    benchmark.extra_info["implementation"] = "worklist"


@pytest.mark.bench
@pytest.mark.parametrize("n", [8, 16])
def test_naive_close_unfounded_tower(benchmark, n):
    program, db = unfounded_tower(n)
    gp = ground(program, db, mode="full")
    fast = well_founded_model(program, db, ground_program=gp)

    slow = benchmark(lambda: naive_well_founded(gp))
    assert slow.status == fast.model.status
    benchmark.extra_info["implementation"] = "naive-scan"
