"""E8 — Theorem 4: structural totality checks are linear time.

Series:

* uniform check ``is_structurally_total`` on random programs with rule
  counts doubling: time per rule should stay flat (linear, NC-parallel in
  theory);
* nonuniform check ``is_structurally_nonuniformly_total`` (useless-predicate
  analysis + reduction + odd-cycle test — still linear, though P-complete);
* the MCVP reduction end-to-end on alternating circuits of growing depth:
  the P-completeness construction exercised as an algorithm.
"""

import pytest

from repro.analysis.structural import (
    is_structurally_nonuniformly_total,
    is_structurally_total,
)
from repro.constructions.circuits import alternating_circuit
from repro.constructions.theorem4 import mcvp_via_structural_totality
from repro.workloads.random_programs import random_propositional_program

SIZES = [200, 800, 3_200]


@pytest.mark.bench
@pytest.mark.parametrize("n_rules", SIZES)
def test_uniform_structural_check(benchmark, n_rules):
    program = random_propositional_program(
        max(8, n_rules // 10), n_rules, negation_probability=0.45, seed=n_rules
    )
    benchmark(is_structurally_total, program)
    benchmark.extra_info["rules"] = n_rules


@pytest.mark.bench
@pytest.mark.parametrize("n_rules", SIZES)
def test_nonuniform_structural_check(benchmark, n_rules):
    program = random_propositional_program(
        max(8, n_rules // 10), n_rules, negation_probability=0.45, seed=n_rules + 1
    )
    benchmark(is_structurally_nonuniformly_total, program)
    benchmark.extra_info["rules"] = n_rules


@pytest.mark.bench
@pytest.mark.parametrize("depth", [4, 6, 8])
def test_mcvp_reduction_scaling(benchmark, depth):
    circuit = alternating_circuit(depth)
    bits = [i % 3 != 0 for i in range(circuit.input_count)]
    expected = circuit.evaluate(bits)

    result = benchmark(mcvp_via_structural_totality, circuit, bits)
    assert result == expected
    benchmark.extra_info["gates"] = len(circuit.gates)
    benchmark.extra_info["value"] = expected
