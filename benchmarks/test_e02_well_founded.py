"""E2 — the well-founded interpreter is polynomial (Algorithm Well-Founded).

Two series:

* ``win_move_line(n)`` — resolved entirely by close(): measures the
  worklist machinery (expected near-linear in ground-graph size);
* ``unfounded_tower(n)`` — forces n unfounded-set iterations: measures the
  outer loop worst case (expected ~quadratic: n iterations × O(graph)).

Each run asserts the model is total and spot-checks known values.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.grounding import ground
from repro.semantics.well_founded import well_founded_model
from repro.workloads.families import unfounded_tower, win_move_line


@pytest.mark.bench
@pytest.mark.parametrize("n", [50, 200, 800])
def test_win_move_line(benchmark, n):
    program, db = win_move_line(n)
    gp = ground(program, db, mode="relevant")

    def run():
        return well_founded_model(program, db, ground_program=gp)

    result = benchmark(run)
    assert result.is_total
    # Alternating win values along the line, losing at the end.
    assert result.model.value(Atom("win", gp.atoms.atom(0).args)) is not None
    benchmark.extra_info["ground_atoms"] = gp.atom_count
    benchmark.extra_info["instances"] = gp.rule_count
    benchmark.extra_info["iterations"] = result.iterations


@pytest.mark.bench
@pytest.mark.parametrize("n", [20, 60, 180])
def test_unfounded_tower(benchmark, n):
    program, db = unfounded_tower(n)
    gp = ground(program, db, mode="full")

    def run():
        return well_founded_model(program, db, ground_program=gp)

    result = benchmark(run)
    assert result.is_total
    assert result.iterations >= n  # one unfounded round per layer
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["ground_atoms"] = gp.atom_count


@pytest.mark.bench
@pytest.mark.parametrize("n", [50, 200])
def test_grounding_plus_wf_end_to_end(benchmark, n):
    program, db = win_move_line(n)

    def run():
        return well_founded_model(program, db, grounding="relevant")

    result = benchmark(run)
    assert result.is_total
