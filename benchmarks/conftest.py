"""Shared fixtures and helpers for the benchmark suite.

Every module here regenerates one experiment of EXPERIMENTS.md (the paper
has no empirical tables; the experiments validate its algorithmic and
complexity claims).  Benchmarks double as correctness checks: each one
asserts the expected *shape* of the result before timing it.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark-suite test")
