"""Legacy setup shim.

This offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-use-pep517`` use the classic
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
