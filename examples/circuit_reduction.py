#!/usr/bin/env python3
"""Theorem 4's P-completeness reduction, run as a circuit evaluator.

Builds monotone circuits, compiles each (circuit, input) pair into the
paper's Datalog program, and evaluates the circuit *through* the
structural-nonuniform-totality check: B(x) = 1 iff the reduction program is
NOT structurally nonuniformly total.  Also displays the proof's invariant
(gate value 1 ⇔ gate predicate useful) on a small circuit.
"""

from repro import Engine
from repro.constructions.circuits import alternating_circuit, random_monotone_circuit
from repro.constructions.theorem4 import (
    gate_predicate,
    mcvp_program,
    mcvp_via_structural_totality,
)


def main() -> None:
    circuit = alternating_circuit(2)  # 4 inputs, AND(OR, OR)
    x = [True, False, True, True]
    program = mcvp_program(circuit, x)
    print("circuit: AND of two ORs over 4 inputs; x =", x)
    print("reduction program:")
    for rule in program.rules:
        print(f"  {rule}")
    useless = Engine(program).analyze()[0].useless
    values = circuit.gate_values(x)
    print("gate values vs usefulness (the Theorem 4 invariant):")
    for index, value in enumerate(values):
        name = gate_predicate(index)
        print(f"  gate {index:>2} value={int(value)}  useless={name in useless}")
    print(f"B(x) = {circuit.evaluate(x)}; via reduction = "
          f"{mcvp_via_structural_totality(circuit, x)}")
    print()

    agreements = 0
    trials = 0
    for seed in range(25):
        c = random_monotone_circuit(5, 15, seed=seed)
        for pattern in (0b00000, 0b11111, 0b10101, 0b01110):
            bits = [bool((pattern >> i) & 1) for i in range(5)]
            trials += 1
            if c.evaluate(bits) == mcvp_via_structural_totality(c, bits):
                agreements += 1
    print(f"random validation: {agreements}/{trials} circuit evaluations agree "
          "with the structural-totality oracle")


if __name__ == "__main__":
    main()
