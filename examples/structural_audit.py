#!/usr/bin/env python3
"""Auditing a rule base for structural totality (Theorems 2-4 in practice).

Scenario: a rule base mixes styles — stratified reporting rules,
call-consistent choice rules, and one subtly dangerous rule whose negation
closes an odd cycle.  The audit

1. classifies every program against the paper's taxonomy,
2. exhibits the odd-cycle witness for the dangerous one,
3. builds the Theorem 2 alphabetic variant and *proves* (by exhaustive
   SAT) that it has no fixpoint — i.e. the danger is structural, not
   hypothetical, and
4. shows the reduced-program escape hatch of Theorem 3: the same odd cycle
   through a useless predicate is harmless when IDBs start empty.
"""

from repro import Engine, parse_program
from repro.analysis.classify import classification_table
from repro.constructions.theorem2 import theorem2_variant
from repro.datalog.printer import format_program

RULE_BASES = {
    "reporting": """
        overdue(X) :- invoice(X), not paid(X).
        flagged(X) :- overdue(X), big(X).
    """,
    "choices": """
        assign_a(X) :- task(X), not assign_b(X).
        assign_b(X) :- task(X), not assign_a(X).
    """,
    "dangerous": """
        approve(X) :- request(X), not reject(X).
        reject(X)  :- review(X, Y), escalate(Y).
        escalate(Y) :- approve(Y), not closed(Y).
    """,
    "guarded-danger": """
        ghost(X) :- ghost(X).
        approve(X) :- not approve(X), ghost(X).
    """,
}


def main() -> None:
    programs = {name: parse_program(text) for name, text in RULE_BASES.items()}
    print(classification_table(programs))
    print()

    dangerous = programs["dangerous"]
    info, _ = Engine(dangerous).analyze()
    print("dangerous rule base:")
    print(f"  odd cycle witness: {info.odd_cycle}")
    variant, delta = theorem2_variant(dangerous)
    print("  Theorem 2 variant (same skeleton, no fixpoint):")
    print("    " + format_program(variant).replace("\n", "\n    ").rstrip())
    print("    with database: " + ", ".join(str(a) for a in delta.atoms()))
    verdict = Engine(variant, delta).solve("completion", grounding="full").found
    print(f"  SAT check — variant has a fixpoint? {verdict}")
    print()

    guarded = programs["guarded-danger"]
    info, _ = Engine(guarded).analyze()
    print("guarded-danger rule base:")
    print(f"  odd cycle in G(Π): {info.odd_cycle}")
    print(f"  useless predicates: {sorted(info.useless)}")
    print(f"  structurally nonuniformly total: {info.is_structurally_nonuniformly_total}")
    print("  (the odd cycle runs through a useless predicate: harmless when")
    print("   IDB relations start empty — Theorem 3 / Lemma 4)")


if __name__ == "__main__":
    main()
