#!/usr/bin/env python3
"""Quickstart: one Engine, every semantics in the paper.

Takes the win-move game on a board with a draw cycle and shows how each
semantics treats it — all through one :class:`repro.api.Engine`, which
parses, grounds, and compiles the kernel index exactly once and then
serves every ``solve``/``enumerate`` call from that shared compile:

* Fitting / Kripke-Kleene: the weakest — leaves the most undefined;
* well-founded (§2): resolves everything reachable, leaves the draw cycle
  undefined;
* pure and well-founded tie-breaking (§3): break the draw nondeterministically
  and return a total model — a fixpoint (Lemma 2), and for the WF variant a
  stable model (Lemma 3);
* exhaustive enumeration: both orientations of the draw, each a fixpoint.

Run: ``python examples/quickstart.py``
"""

from repro import Engine, is_fixpoint, is_stable_model

PROGRAM = """
win(X) :- move(X, Y), not win(Y).
"""

# 1 -> 2 -> 3 (a resolved line) and 10 <-> 11 (a draw cycle).
DATABASE = """
move(1, 2). move(2, 3).
move(10, 11). move(11, 10).
"""


def show(title, solution):
    wins = sorted(str(a) for a in solution.true_atoms if a.predicate == "win")
    draws = sorted(str(a) for a in solution.undefined_atoms if a.predicate == "win")
    print(f"{title:<28} total={solution.total!s:<5} wins={wins} undefined={draws}")


def main() -> None:
    engine = Engine(PROGRAM, DATABASE, grounding="full")

    print("Program:")
    print(f"  {engine.program}")
    print("Database:", ", ".join(str(a) for a in engine.database.atoms()))
    print()

    show("Fitting (Kripke-Kleene):", engine.solve("fitting"))
    show("well-founded:", engine.solve("well_founded"))
    show("pure tie-breaking:", engine.solve("pure_tie_breaking"))
    wf_tb = engine.solve("tie_breaking")
    show("well-founded tie-breaking:", wf_tb)
    print()

    print(f"one compile served them all: engine.ground_calls = {engine.ground_calls}")
    print("Lemma 2: the total tie-breaking model is a fixpoint:",
          is_fixpoint(engine.program, engine.database, wf_tb.true_atoms))
    print("Lemma 3: the well-founded tie-breaking model is stable:",
          is_stable_model(engine.program, engine.database, wf_tb.true_atoms))
    print()

    print("All tie-breaking outcomes (both orientations of the draw):")
    for solution in engine.enumerate("tie_breaking"):
        wins = sorted(
            str(a) for a in solution.true_atoms
            if a.predicate == "win" and a.args[0].value in (10, 11)
        )
        print(f"  choice trace {len(solution.choices)} decisions -> cycle winners {wins}")


if __name__ == "__main__":
    main()
