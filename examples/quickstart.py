#!/usr/bin/env python3
"""Quickstart: one program, every semantics in the paper.

Takes the win-move game on a board with a draw cycle and shows how each
semantics treats it:

* Fitting / Kripke-Kleene: the weakest — leaves the most undefined;
* well-founded (§2): resolves everything reachable, leaves the draw cycle
  undefined;
* pure and well-founded tie-breaking (§3): break the draw nondeterministically
  and return a total model — a fixpoint (Lemma 2), and for the WF variant a
  stable model (Lemma 3);
* exhaustive enumeration: both orientations of the draw, each a fixpoint.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Database,
    enumerate_tie_breaking_models,
    fitting_model,
    is_fixpoint,
    is_stable_model,
    parse_database,
    parse_program,
    pure_tie_breaking,
    well_founded_model,
    well_founded_tie_breaking,
)

PROGRAM = """
win(X) :- move(X, Y), not win(Y).
"""

# 1 -> 2 -> 3 (a resolved line) and 10 <-> 11 (a draw cycle).
DATABASE = """
move(1, 2). move(2, 3).
move(10, 11). move(11, 10).
"""


def show(title, model):
    wins = sorted(str(a) for a in model.true_atoms() if a.predicate == "win")
    draws = sorted(str(a) for a in model.undefined_atoms() if a.predicate == "win")
    print(f"{title:<28} total={model.is_total!s:<5} wins={wins} undefined={draws}")


def main() -> None:
    program = parse_program(PROGRAM)
    database = parse_database(DATABASE)

    print("Program:")
    print(f"  {program}")
    print("Database:", ", ".join(str(a) for a in database.atoms()))
    print()

    show("Fitting (Kripke-Kleene):", fitting_model(program, database))
    show("well-founded:", well_founded_model(program, database).model)

    pure = pure_tie_breaking(program, database)
    show("pure tie-breaking:", pure.model)
    wf_tb = well_founded_tie_breaking(program, database)
    show("well-founded tie-breaking:", wf_tb.model)
    print()

    print("Lemma 2: the total tie-breaking model is a fixpoint:",
          is_fixpoint(program, database, wf_tb.model.true_set()))
    print("Lemma 3: the well-founded tie-breaking model is stable:",
          is_stable_model(program, database, wf_tb.model.true_set()))
    print()

    print("All tie-breaking outcomes (both orientations of the draw):")
    for run in enumerate_tie_breaking_models(program, database):
        wins = sorted(
            str(a) for a in run.model.true_set()
            if a.predicate == "win" and a.args[0].value in (10, 11)
        )
        print(f"  choice trace {len(run.choices)} decisions -> cycle winners {wins}")


if __name__ == "__main__":
    main()
