#!/usr/bin/env python3
"""Game analysis at scale: win-move over a random board.

The intro's motivating workload: positions and moves form a directed graph;
``win(X) :- move(X, Y), ¬win(Y)`` classifies positions into won / lost /
drawn.  The well-founded semantics computes the game-theoretic value —
drawn positions stay *undefined* — and the tie-breaking semantics then
"plays out" the draws: each drawn cluster is a tie whose orientation
assigns winners consistently (a fixpoint), modelling an arbiter who must
produce a total ruling.

Run: ``python examples/win_move_tournament.py [positions] [seed]``
"""

import random
import sys

from repro import Database, parse_program, well_founded_model, well_founded_tie_breaking
from repro.semantics.choices import RandomChoice


def random_board(positions: int, seed: int) -> Database:
    """A sparse random move graph with some sinks (immediately lost)."""
    rng = random.Random(seed)
    db = Database()
    for source in range(positions):
        if rng.random() < 0.15:
            continue  # sink: no moves, a lost position
        for _ in range(rng.randint(1, 3)):
            db.add("move", source, rng.randrange(positions))
    return db


def main() -> None:
    positions = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    program = parse_program("win(X) :- move(X, Y), not win(Y).")
    board = random_board(positions, seed)
    print(f"board: {positions} positions, {len(board)} moves (seed {seed})")

    run = well_founded_model(program, board)
    model = run.model
    won = sum(1 for a in model.true_atoms() if a.predicate == "win")
    drawn = sum(1 for a in model.undefined_atoms() if a.predicate == "win")
    lost = positions - won - drawn
    print("well-founded game values:")
    print(f"  won: {won}   lost: {lost}   drawn: {drawn}")

    ruling = well_founded_tie_breaking(program, board, policy=RandomChoice(seed))
    decided = sum(1 for a in ruling.model.true_atoms() if a.predicate == "win")
    stuck = sum(1 for a in ruling.model.undefined_atoms() if a.predicate == "win")
    print("tie-breaking ruling (draws decided arbitrarily):")
    print(f"  total: {ruling.is_total}   winners: {decided}   "
          f"free choices made: {ruling.free_choice_count}")
    if not ruling.is_total:
        # win-move is NOT structurally total: its program graph has an odd
        # self-loop (win ¬→ win).  Draw clusters on EVEN move cycles are
        # ties and get broken; draw clusters on ODD move cycles are the
        # Theorem 2 contradiction in the wild — no total ruling (fixpoint)
        # exists for them at all, under ANY semantics.
        print(f"  {stuck} positions sit on odd move cycles: provably no "
              "consistent total ruling exists for them")

    # The ruling never contradicts the game-theoretic values:
    for a in model.true_atoms():
        assert ruling.model.value(a) is True
    for a in model.false_atoms():
        assert ruling.model.value(a) is False
    print("consistency with the well-founded values: verified")


if __name__ == "__main__":
    main()
