#!/usr/bin/env python3
"""Game analysis at scale: win-move over a random board.

The intro's motivating workload: positions and moves form a directed graph;
``win(X) :- move(X, Y), ¬win(Y)`` classifies positions into won / lost /
drawn.  The well-founded semantics computes the game-theoretic value —
drawn positions stay *undefined* — and the tie-breaking semantics then
"plays out" the draws: each drawn cluster is a tie whose orientation
assigns winners consistently (a fixpoint), modelling an arbiter who must
produce a total ruling.

Both rulings come from one :class:`repro.api.Engine`: the board is
grounded and kernel-compiled once, and the well-founded and tie-breaking
solves share that compile (``engine.ground_calls == 1``).

Run: ``python examples/win_move_tournament.py [positions] [seed]``
"""

import random
import sys

from repro import Database, Engine
from repro.semantics.choices import RandomChoice


def random_board(positions: int, seed: int) -> Database:
    """A sparse random move graph with some sinks (immediately lost)."""
    rng = random.Random(seed)
    db = Database()
    for source in range(positions):
        if rng.random() < 0.15:
            continue  # sink: no moves, a lost position
        for _ in range(rng.randint(1, 3)):
            db.add("move", source, rng.randrange(positions))
    return db


def main() -> None:
    positions = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    board = random_board(positions, seed)
    engine = Engine("win(X) :- move(X, Y), not win(Y).", board)
    print(f"board: {positions} positions, {len(board)} moves (seed {seed})")

    values = engine.solve("well_founded")
    won = sum(1 for a in values.true_atoms if a.predicate == "win")
    drawn = sum(1 for a in values.undefined_atoms if a.predicate == "win")
    lost = positions - won - drawn
    print("well-founded game values:")
    print(f"  won: {won}   lost: {lost}   drawn: {drawn}")

    ruling = engine.solve("tie_breaking", policy=RandomChoice(seed))
    decided = sum(1 for a in ruling.true_atoms if a.predicate == "win")
    stuck = sum(1 for a in ruling.undefined_atoms if a.predicate == "win")
    print("tie-breaking ruling (draws decided arbitrarily):")
    print(f"  total: {ruling.total}   winners: {decided}   "
          f"free choices made: {ruling.free_choice_count}   policy: {ruling.policy}")
    if not ruling.total:
        # win-move is NOT structurally total: its program graph has an odd
        # self-loop (win ¬→ win).  Draw clusters on EVEN move cycles are
        # ties and get broken; draw clusters on ODD move cycles are the
        # Theorem 2 contradiction in the wild — no total ruling (fixpoint)
        # exists for them at all, under ANY semantics.
        print(f"  {stuck} positions sit on odd move cycles: provably no "
              "consistent total ruling exists for them")

    # The ruling never contradicts the game-theoretic values, and both
    # solves shared one grounding + kernel compile:
    assert engine.ground_calls == 1, engine.stats()
    for a in values.true_atoms:
        assert ruling.value(a) is True
    for a in values.false_atoms:
        assert ruling.value(a) is False
    print("consistency with the well-founded values: verified "
          f"(one compile, {engine.ground_calls} grounding)")


if __name__ == "__main__":
    main()
