#!/usr/bin/env python3
"""Provenance: auditing why the interpreter decided each atom.

A small access-control rule base mixes derivation, closed-world failure,
unfounded-set reasoning, and a genuine tie.  After evaluation, every
decision is explained from the recorded provenance: derivations print
their rule instance and premises recursively; failures print which
mechanism refuted them (no remaining support, unfounded set, tie side).
"""

from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.ground.explain import explain, format_explanation
from repro.semantics.tie_breaking import well_founded_tie_breaking

PROGRAM = """
access(U) :- clearance(U), not revoked(U).
revoked(U) :- incident(U, E), serious(E).
% vouching cycle: two admins can vouch for each other (a tie)
trusted(U) :- vouched(U), not distrusted(U).
distrusted(U) :- vouched(U), not trusted(U).
% ghost permissions: only self-supporting, swept by the unfounded check
ghost(U) :- ghost(U).
audit(U) :- access(U), trusted(U).
"""

DATABASE = """
clearance(alice). clearance(bob).
incident(bob, leak). serious(leak).
vouched(alice).
"""


def main() -> None:
    program = parse_program(PROGRAM)
    database = parse_database(DATABASE)
    run = well_founded_tie_breaking(program, database, grounding="full")
    print(f"model total: {run.is_total}; free choices: {run.free_choice_count}")
    print()
    for text in [
        "access(alice)",
        "access(bob)",
        "revoked(bob)",
        "trusted(alice)",
        "ghost(alice)",
        "audit(alice)",
    ]:
        tree = explain(run.state, parse_atom(text))
        print(format_explanation(tree))
        print()


if __name__ == "__main__":
    main()
