#!/usr/bin/env python3
"""Provenance: auditing why the interpreter decided each atom.

A small access-control rule base mixes derivation, closed-world failure,
unfounded-set reasoning, and a genuine tie.  After evaluation, every
decision is explained from the recorded provenance: derivations print
their rule instance and premises recursively; failures print which
mechanism refuted them (no remaining support, unfounded set, tie side).
"""

from repro import Engine
from repro.ground.explain import format_explanation

PROGRAM = """
access(U) :- clearance(U), not revoked(U).
revoked(U) :- incident(U, E), serious(E).
% vouching cycle: two admins can vouch for each other (a tie)
trusted(U) :- vouched(U), not distrusted(U).
distrusted(U) :- vouched(U), not trusted(U).
% ghost permissions: only self-supporting, swept by the unfounded check
ghost(U) :- ghost(U).
audit(U) :- access(U), trusted(U).
"""

DATABASE = """
clearance(alice). clearance(bob).
incident(bob, leak). serious(leak).
vouched(alice).
"""


def main() -> None:
    engine = Engine(PROGRAM, DATABASE, grounding="full")
    solution = engine.solve("tie_breaking")
    print(f"model total: {solution.total}; free choices: {solution.free_choice_count}")
    print()
    for text in [
        "access(alice)",
        "access(bob)",
        "revoked(bob)",
        "trusted(alice)",
        "ghost(alice)",
        "audit(alice)",
    ]:
        tree = engine.explain(text, semantics="tie_breaking")
        print(format_explanation(tree))
        print()


if __name__ == "__main__":
    main()
