#!/usr/bin/env python3
"""Theorem 6, hands on: totality encodes the halting problem.

Builds the paper's reduction for two concrete 2-counter machines:

* a machine that halts — the reduction program has **no fixpoint** on the
  natural arithmetic database (the troublesome rule ``p :- ¬p, halted``
  closes an odd loop exactly when the simulation reaches the halting
  state);
* a machine that loops forever — a fixpoint exists for the natural
  database *and* for adversarial databases whose zero/succ/less relations
  are garbage (the guard rules 1a/1b/2 absorb every non-arithmetic).

Since totality quantifies over all databases, deciding it would decide
halting — Theorem 6's undecidability, made executable.
"""

from repro.constructions.counter_machines import (
    alternating_machine,
    bounded_counter_machine,
)
from repro import Engine
from repro.constructions.theorem6 import (
    machine_to_program,
    natural_database,
    random_database,
)


def main() -> None:
    halting = bounded_counter_machine(3)
    result = halting.run(100)
    print(f"machine A: increments counter1 three times -> halts at t={result.steps}")
    program = machine_to_program(halting)
    print(f"  reduction program: {len(program)} rules, "
          f"IDB={sorted(program.idb_predicates)}, EDB={sorted(program.edb_predicates)}")
    horizon = max(result.steps, halting.halting_state)
    # One engine per (program, database): the completion SAT call and the
    # well-founded run below share a single 'edb' grounding.  Completion's
    # grounding mode is semantics-critical ('full' by default), so the
    # reduction's 'edb' mode is requested explicitly per call — an
    # engine-level default would not (and must not) override it.
    engine = Engine(program, natural_database(horizon), grounding="edb")
    print(f"  natural database 0..{horizon}: "
          f"has fixpoint? {engine.solve('completion', grounding='edb').found}")
    wf = engine.solve("well_founded")
    trouble = [str(a) for a in wf.undefined_atoms]
    print(f"  well-founded model: total={wf.total}, undefined={trouble}")
    print()

    looping = alternating_machine()
    print("machine B: ping-pongs between two states forever (never halts)")
    program = machine_to_program(looping)
    fixpoint = Engine(program, natural_database(4)).solve("completion", grounding="edb")
    states = sorted(str(a) for a in fixpoint.true_atoms if a.predicate == "state")
    print(f"  natural database: fixpoint found; simulation trace = {states}")
    for seed in range(3):
        adversarial = random_database(3, seed=seed)
        found = Engine(program, adversarial).solve("completion", grounding="edb").found
        print(f"  adversarial database (seed {seed}, {len(adversarial)} junk facts): "
              f"fixpoint exists = {found}")
    print()
    print("halting  -> some database kills every fixpoint (not total)")
    print("looping  -> every database tested admits a fixpoint (total)")
    print("deciding totality would decide halting: undecidable (Theorem 6)")


if __name__ == "__main__":
    main()
