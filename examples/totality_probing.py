#!/usr/bin/env python3
"""Probing totality: the r.e. search of §5 against the structural check.

Theorem 6 says totality is undecidable, so no tool can decide it — but the
paper points out two practical weapons:

* the **structural check** (Theorem 2/3): linear-time, sound for totality
  when it accepts, and when it rejects, the danger is real *for some
  alphabetic variant* — but the program at hand may still be total;
* the **bounded witness search** (§5's r.e. procedure): enumerate small
  databases, SAT-check each; a hit is a *proof* of non-totality.

This example runs both on a spectrum of programs, showing all four
verdict combinations — including the paper's program (1), which is total
despite failing the structural check, and its variant (2), which the
search refutes with a one-constant database.
"""

from repro import Engine

PROGRAMS = {
    "even cycle (total)": "p(X) :- not q(X), e(X). q(X) :- not p(X), e(X).",
    "paper program (1)": "p(a) :- not p(X), e(b).",
    "paper program (2)": "p(X, Y) :- not p(Y, Y), e(X).",
    "win-move": "win(X) :- move(X, Y), not win(Y).",
    "guarded trap": "p :- not p, e.",
    "stratified": "flag(X) :- item(X), not ok(X). ok(X) :- checked(X).",
}


def main() -> None:
    print(f"{'program':<22} {'structural check':<18} {'bounded witness search':<40}")
    print("-" * 80)
    for name, source in PROGRAMS.items():
        engine = Engine(source)
        _, report = engine.analyze()
        structural = report.structurally_total
        witness = engine.witness_search(max_constants=1)
        if witness is None:
            verdict = "no counterexample (≤1 fresh constant)"
        else:
            facts = ", ".join(str(a) for a in witness.atoms()) or "(empty database)"
            verdict = f"NOT TOTAL — witness {{{facts}}}"
        print(f"{name:<22} {'pass' if structural else 'FAIL':<18} {verdict:<40}")
    print()
    print("program (1) fails the structural check yet no witness exists: it is")
    print("total 'due to the intricate pattern in which variables and constants")
    print("repeat in the rules' — exactly the gap structural totality formalizes.")
    print("No bound on the search suffices in general: that is Theorem 6.")


if __name__ == "__main__":
    main()
