#!/usr/bin/env python3
"""Tie-breaking as a programming construct: nondeterministic choice.

§6 of the paper argues the archetypical unstratifiable-but-structurally-
total program ``P(x) :- ¬Q(x); Q(x) :- ¬P(x)`` is a feature, not a bug:
it lets the *interpreter* choose.  This example uses that idiom to split a
set of people into two committees subject to Datalog-checkable
constraints, and shows:

* every tie-breaking run yields a valid split (a stable model);
* different choice policies / seeds yield different splits — and every
  :class:`repro.api.Solution` records the policy that produced it;
* exhaustive enumeration recovers all 2^n splits of the unconstrained core.

All runs share one :class:`repro.api.Engine` (a single grounding).
"""

from repro import Database, Engine, is_stable_model
from repro.semantics.choices import RandomChoice

PROGRAM = """
red(X)  :- person(X), not blue(X).
blue(X) :- person(X), not red(X).
% derived bookkeeping: every person is seated somewhere
seated(X) :- red(X).
seated(X) :- blue(X).
"""

PEOPLE = ["ann", "bob", "cleo", "dan"]


def main() -> None:
    database = Database.from_dict({"person": [(p,) for p in PEOPLE]})
    engine = Engine(PROGRAM, database, grounding="full")

    print("Three arbitrated splits (different seeds):")
    for seed in (1, 2, 3):
        solution = engine.solve("tie_breaking", policy=RandomChoice(seed))
        assert solution.total
        red = sorted(a.args[0].value for a in solution.true_atoms if a.predicate == "red")
        blue = sorted(a.args[0].value for a in solution.true_atoms if a.predicate == "blue")
        stable = is_stable_model(engine.program, database, solution.true_atoms)
        print(f"  {solution.policy}: red={red} blue={blue}  stable={stable}")

    print()
    splits = set()
    for solution in engine.enumerate("tie_breaking"):
        red = frozenset(
            a.args[0].value for a in solution.true_atoms if a.predicate == "red"
        )
        splits.add(red)
    print(f"exhaustive enumeration: {len(splits)} distinct red-committees "
          f"(expected 2^{len(PEOPLE)} = {2 ** len(PEOPLE)})")
    assert len(splits) == 2 ** len(PEOPLE)
    print(f"every run above shared one grounding: engine.ground_calls = "
          f"{engine.ground_calls}")


if __name__ == "__main__":
    main()
