#!/usr/bin/env python3
"""Tie-breaking as a programming construct: nondeterministic choice.

§6 of the paper argues the archetypical unstratifiable-but-structurally-
total program ``P(x) :- ¬Q(x); Q(x) :- ¬P(x)`` is a feature, not a bug:
it lets the *interpreter* choose.  This example uses that idiom to split a
set of people into two committees subject to Datalog-checkable
constraints, and shows:

* every tie-breaking run yields a valid split (a stable model);
* different choice policies / seeds yield different splits;
* exhaustive enumeration recovers all 2^n splits of the unconstrained core.
"""

from repro import Database, is_stable_model, parse_program
from repro.semantics.choices import RandomChoice
from repro.semantics.tie_breaking import (
    enumerate_tie_breaking_models,
    well_founded_tie_breaking,
)

PROGRAM = """
red(X)  :- person(X), not blue(X).
blue(X) :- person(X), not red(X).
% derived bookkeeping: every person is seated somewhere
seated(X) :- red(X).
seated(X) :- blue(X).
"""

PEOPLE = ["ann", "bob", "cleo", "dan"]


def main() -> None:
    program = parse_program(PROGRAM)
    database = Database.from_dict({"person": [(p,) for p in PEOPLE]})

    print("Three arbitrated splits (different seeds):")
    for seed in (1, 2, 3):
        run = well_founded_tie_breaking(
            program, database, policy=RandomChoice(seed), grounding="full"
        )
        assert run.is_total
        red = sorted(a.args[0].value for a in run.model.true_set() if a.predicate == "red")
        blue = sorted(a.args[0].value for a in run.model.true_set() if a.predicate == "blue")
        stable = is_stable_model(program, database, run.model.true_set())
        print(f"  seed {seed}: red={red} blue={blue}  stable={stable}")

    print()
    splits = set()
    for run in enumerate_tie_breaking_models(program, database, grounding="full"):
        red = frozenset(
            a.args[0].value for a in run.model.true_set() if a.predicate == "red"
        )
        splits.add(red)
    print(f"exhaustive enumeration: {len(splits)} distinct red-committees "
          f"(expected 2^{len(PEOPLE)} = {2 ** len(PEOPLE)})")
    assert len(splits) == 2 ** len(PEOPLE)


if __name__ == "__main__":
    main()
