#!/usr/bin/env python3
"""Default reasoning through tie-breaking — the [PS] citation of §3, live.

Knowledge bases with defaults ("birds fly unless abnormal", "Quakers are
pacifists unless hawks") translate to Datalog¬; their *extensions* are the
stable models of the translation.  The paper's §3 notes that tie-breaking
was first proposed as an extension-finding mechanism in default logic —
and Lemma 3 is exactly why it works: a total well-founded tie-breaking run
is a stable model, i.e. an extension, found in polynomial time.

The demo resolves the Nixon diamond (two defensible worldviews — the
interpreter picks one per choice policy), the Tweety triangle (a unique
extension, no ties needed), and an extensionless theory (the interpreter
correctly stalls instead of guessing).  The extension finders of
:mod:`repro.extensions.default_logic` run on the :class:`repro.api.Engine`
under the hood.
"""

from repro.extensions.default_logic import (
    Default,
    DefaultTheory,
    extensions,
    find_extension_tie_breaking,
)
from repro.semantics.choices import RandomChoice


def show(name, theory):
    print(f"{name}:")
    for d in theory.defaults:
        print(f"  default {d}")
    print(f"  facts: {sorted(theory.facts)}")
    all_extensions = [sorted(e - theory.facts) for e in extensions(theory)]
    print(f"  extensions ({len(all_extensions)}): {sorted(all_extensions)}")
    for seed in (1, 5):
        found = find_extension_tie_breaking(theory, policy=RandomChoice(seed))
        label = sorted(found - theory.facts) if found is not None else "stalled"
        print(f"  tie-breaking (seed {seed}) -> {label}")
    print()


def main() -> None:
    show(
        "Nixon diamond",
        DefaultTheory(
            frozenset({"quaker", "republican"}),
            (
                Default(("quaker",), ("hawk",), "pacifist"),
                Default(("republican",), ("pacifist",), "hawk"),
            ),
        ),
    )
    show(
        "Tweety the penguin",
        DefaultTheory(
            frozenset({"bird", "penguin"}),
            (
                Default(("bird",), ("abnormal",), "flies"),
                Default(("penguin",), (), "abnormal"),
            ),
        ),
    )
    show(
        "extensionless: (: ¬p / p)",
        DefaultTheory(frozenset(), (Default((), ("p",), "p"),)),
    )
    print("Lemma 3 in action: whenever tie-breaking terminates totally, the")
    print("result is an extension; when no extension exists it stalls rather")
    print("than fabricate one.")


if __name__ == "__main__":
    main()
