#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown documentation.

Scans README.md, DESIGN.md, and every ``docs/*.md`` page for markdown
links, and verifies that each *relative* target (with any ``#anchor``
stripped) exists on disk, resolved against the linking file's directory.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
are ignored.  CI runs this in the docs job; run it locally with::

    python docs/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must exist too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check(paths: list[Path]) -> list[str]:
    """All broken links in ``paths``, formatted ``file: target``."""
    broken: list[str] = []
    for path in paths:
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            bare = target.split("#", 1)[0]
            if not bare:  # pure in-page anchor
                continue
            if not (path.parent / bare).exists():
                broken.append(f"{path.relative_to(REPO_ROOT)}: {target}")
    return broken


def main() -> int:
    pages = sorted(
        [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
        + list((REPO_ROOT / "docs").glob("*.md"))
    )
    missing = [p for p in pages if not p.exists()]
    if missing:
        print(f"missing documentation pages: {missing}", file=sys.stderr)
        return 1
    broken = check(pages)
    if broken:
        print("broken relative links:", file=sys.stderr)
        for line in broken:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"checked {len(pages)} pages, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
