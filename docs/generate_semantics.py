#!/usr/bin/env python3
"""Generate ``docs/semantics.md`` from the live semantics registry.

The semantics cheat-sheet used to be hand-maintained in the README and
could silently drift from the code.  It is now *generated*: the table of
engine names, aliases, grounding defaults, and options comes straight
from :mod:`repro.api.registry` (one row per ``SemanticsSpec``), merged
with the paper-facing notes kept in :data:`PAPER_NOTES` below — and the
generator *fails* if the two ever disagree about which semantics exist.

Usage::

    python docs/generate_semantics.py            # rewrite docs/semantics.md
    python docs/generate_semantics.py --check    # exit 1 if the page is stale

CI runs ``--check``, so a registry change that forgets to regenerate (or
to describe a new semantics in ``PAPER_NOTES``) fails the docs job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.registry import _REGISTRY, available_semantics  # noqa: E402

# Paper-facing annotations that cannot be derived from the specs.  Keys
# MUST exactly cover the registry: the generator refuses to run otherwise.
PAPER_NOTES: dict[str, dict[str, str]] = {
    "fitting": {
        "paper": "§2 [Fit]",
        "total": "rarely",
        "deterministic": "yes",
        "notes": "weakest fixpoint of the 3-valued operator",
    },
    "well_founded": {
        "paper": "§2 [VRS]",
        "total": "sometimes",
        "deterministic": "yes",
        "notes": "unfounded-set loop; unique partial model",
    },
    "stratified": {
        "paper": "§2 [ABW]",
        "total": "yes (stratified Π)",
        "deterministic": "yes",
        "notes": "layer-by-layer evaluation",
    },
    "perfect": {
        "paper": "§2 [Prz]",
        "total": "yes (stratified Π)",
        "deterministic": "yes",
        "notes": "layer-by-layer evaluation",
    },
    "pure_tie_breaking": {
        "paper": "§3",
        "total": "yes*",
        "deterministic": "no (policy)",
        "notes": "breaks bottom ties; result is a fixpoint (Lemma 2)",
    },
    "tie_breaking": {
        "paper": "§3",
        "total": "yes*",
        "deterministic": "no (policy)",
        "notes": "unfounded sets first; total results are stable (Lemma 3)",
    },
    "stable": {
        "paper": "§2 [GL]",
        "total": "—",
        "deterministic": "—",
        "notes": "NP-hard existence; reduct + close checkers",
    },
    "completion": {
        "paper": "§2",
        "total": "—",
        "deterministic": "—",
        "notes": "fixpoints via completion-SAT enumeration",
    },
    "alternating": {
        "paper": "§2 [VG]",
        "total": "sometimes",
        "deterministic": "yes",
        "notes": "well-founded via Γ² (cross-validation)",
    },
    "modular": {
        "paper": "—",
        "total": "sometimes",
        "deterministic": "yes",
        "notes": "well-founded per program-graph SCC",
    },
}


def render() -> str:
    """The full markdown page, rendered from the registry."""
    names = available_semantics()
    missing = sorted(set(names) - set(PAPER_NOTES))
    extra = sorted(set(PAPER_NOTES) - set(names))
    if missing or extra:
        raise SystemExit(
            f"PAPER_NOTES out of sync with the registry: missing={missing} extra={extra} "
            "— update docs/generate_semantics.py"
        )

    lines = [
        "<!-- GENERATED FILE — do not edit by hand.",
        "     Regenerate with: python docs/generate_semantics.py",
        "     CI runs `python docs/generate_semantics.py --check`. -->",
        "",
        "# Semantics cheat-sheet",
        "",
        "Every semantics is a declarative `SemanticsSpec` in the",
        "[`repro.api` registry](../src/repro/api/registry.py); this page is",
        "generated from that registry, so it cannot drift from the code.",
        "Solve any of them with `engine.solve(name)` — see",
        "[docs/api.md](api.md) for the `Engine` and `Solution` reference.",
        "",
        "| `engine.solve(...)` | Paper | Total? | Deterministic? | Notes |",
        "|---|---|---|---|---|",
    ]
    for name in names:
        spec = _REGISTRY[name]
        note = PAPER_NOTES[name]
        enum = " (+ `enumerate`)" if spec.enumerator is not None else ""
        lines.append(
            f"| `\"{name}\"`{enum} | {note['paper']} | {note['total']} "
            f"| {note['deterministic']} | {note['notes']} |"
        )
    lines += [
        "",
        "`engine.enumerate(\"tie_breaking\")` explores every orientation of every",
        "free choice (the paper's \"for all choices\" statements, exhaustively).",
        "",
        "\\* total when every tie encountered is breakable — guaranteed for",
        "call-consistent programs (Theorem 1); `analyze` / `witness` probe the",
        "general case (§5: undecidable in general, co-NP-complete",
        "propositionally).",
        "",
        "## Registry detail",
        "",
        "Everything below is read off the `SemanticsSpec` table: aliases are",
        "accepted anywhere a semantics name is, *default grounding* is the mode",
        "used when neither the engine nor the call site picks one, *locked*",
        "means an engine-wide default must not override it (only an explicit",
        "per-call `grounding=` does), and *options* are the keyword arguments",
        "`engine.solve` accepts for that semantics.",
        "",
        "| Semantics | Aliases | Summary | Default grounding | Locked | Options |",
        "|---|---|---|---|---|---|",
    ]
    for name in names:
        spec = _REGISTRY[name]
        aliases = ", ".join(f"`{a}`" for a in spec.aliases) or "—"
        grounding = f"`{spec.default_grounding}`" if spec.default_grounding else "(none)"
        locked = "yes" if spec.grounding_locked else "no"
        options = ", ".join(f"`{o}`" for o in spec.options) or "—"
        lines.append(
            f"| `{name}` | {aliases} | {spec.summary} | {grounding} | {locked} | {options} |"
        )
    lines += [
        "",
        "New semantics plug in with one `repro.api.register(SemanticsSpec(...))`",
        "call (plus a `PAPER_NOTES` entry here) — no new module exports, no CLI",
        "changes, and this page regenerates itself.",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/semantics.md matches the registry instead of writing it",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DOCS_DIR / "semantics.md",
        help="target page (default: docs/semantics.md)",
    )
    args = parser.parse_args(argv)
    content = render()
    if args.check:
        on_disk = args.output.read_text() if args.output.exists() else None
        if on_disk != content:
            print(
                f"{args.output} is stale — regenerate with: python docs/generate_semantics.py",
                file=sys.stderr,
            )
            return 1
        print(f"{args.output} is up to date with the registry")
        return 0
    args.output.write_text(content)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
